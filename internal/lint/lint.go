// Package lint is a stdlib-only miniature of golang.org/x/tools/go/analysis,
// specialised to this repository. It exists because the module must stay
// offline-buildable with zero external dependencies, yet the invariants that
// its hardest concurrency bugs violated — a mutex held across channel work,
// sync.Pool objects escaping their Get/Put discipline, contexts dropped
// instead of threaded — are exactly the kind of property a small, local,
// syntactic-plus-types verifier can pin on every commit. In the spirit of the
// source paper (Göös & Suomela, PODC 2011), each analyzer is a local verifier
// for a global code property: it inspects one function or one package at a
// time and accepts only when the per-site certificate (the code plus, where
// needed, an explicit //lint:ignore reason) is locally consistent.
//
// The framework mirrors go/analysis at small scale: an Analyzer has a Name, a
// Doc, and a Run function over a *Pass; a Pass carries the token.FileSet, the
// parsed files, and full go/types information for one package; diagnostics
// are positioned and printed as "file:line: [name] message". Suppression uses
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The reason is
// mandatory; an ignore without one, with an unknown analyzer name, or that
// suppresses nothing is itself a diagnostic, so the set of exceptions stays
// honest. Fixture tests use an analysistest-style harness (RunFixture) that
// checks testdata packages against "// want \"regexp\"" comments.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass: a short lower-case Name
// (used in diagnostics and //lint:ignore directives), a Doc explaining the
// invariant it pins and the historical bug that motivated it, and a Run
// function invoked once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass carries everything one Analyzer needs to inspect one package:
// the shared fileset, the parsed (non-test) files, the type-checked package
// and its types.Info. Analyzers report through Reportf, which applies the
// package's //lint:ignore directives before recording a diagnostic.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg   *Package
	diags *[]Diagnostic
}

// A Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless an ignore directive for this
// analyzer covers the line (or the directive sits on the line directly
// above, the idiomatic placement for a standalone comment).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos      token.Position // of the comment
	name     string         // analyzer name the directive targets
	reason   string         // mandatory free-text justification
	used     bool           // set when it suppresses at least one diagnostic
	malformed string        // non-empty when the directive could not be parsed
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore(\s+(\S+))?(\s+(.*\S))?\s*$`)

// parseIgnores scans every comment in f for //lint:ignore directives.
func parseIgnores(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, group := range f.Comments {
		for _, c := range group.List {
			if !strings.HasPrefix(c.Text, "//lint:ignore") {
				continue
			}
			d := &ignoreDirective{pos: fset.Position(c.Pos())}
			m := ignoreRE.FindStringSubmatch(c.Text)
			switch {
			case m == nil:
				d.malformed = "malformed lint:ignore directive"
			case m[2] == "":
				d.malformed = "lint:ignore needs an analyzer name and a reason"
			case m[4] == "":
				d.name = m[2]
				d.malformed = fmt.Sprintf("lint:ignore %s needs a written reason", m[2])
			default:
				d.name, d.reason = m[2], m[4]
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressed reports whether a diagnostic from analyzer name at pos is
// covered by an ignore directive in the same file, on the same line or on
// the line directly above. Matching directives are marked used.
func (pkg *Package) suppressed(name string, pos token.Position) bool {
	ok := false
	for _, d := range pkg.ignores[pos.Filename] {
		if d.malformed != "" || d.name != name {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			d.used = true
			ok = true
		}
	}
	return ok
}

// RunOptions tunes a Run call. CheckDirectives additionally audits the
// package's //lint:ignore directives: malformed ones, ones naming an unknown
// analyzer, and ones that suppressed nothing all become diagnostics. It
// should be enabled only when running the full analyzer set (otherwise a
// directive for an analyzer that simply was not run would be reported as
// unused).
type RunOptions struct {
	CheckDirectives bool
}

// Run executes each analyzer over the loaded package and returns the merged,
// position-sorted diagnostics.
func Run(pkg *Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			pkg:       pkg,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	if opts.CheckDirectives {
		known := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			known[a.Name] = true
		}
		for _, byFile := range pkg.ignores {
			for _, d := range byFile {
				switch {
				case d.malformed != "":
					diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "lint", Message: d.malformed})
				case !known[d.name]:
					diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "lint",
						Message: fmt.Sprintf("lint:ignore names unknown analyzer %q", d.name)})
				case !d.used:
					diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "lint",
						Message: fmt.Sprintf("unused lint:ignore %s directive (the code below no longer trips it)", d.name)})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full analyzer set in deterministic order. cmd/lcplint and
// the repo-wide cleanliness test both run exactly this set.
func All() []*Analyzer {
	return []*Analyzer{
		LockHeld,
		PoolPut,
		CtxFlow,
		ErrIgnored,
		DocComment,
	}
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names string) ([]*Analyzer, error) {
	all := All()
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, analyzerNames(all))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty analyzer selection")
	}
	return out, nil
}

func analyzerNames(as []*Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
