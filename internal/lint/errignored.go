package lint

import (
	"go/ast"
	"go/types"
)

// ErrIgnored flags call statements that silently discard an error result.
// Every hard-to-reproduce bug starts life as a swallowed error; in a
// verification codebase whose whole point is rejecting bad inputs, an
// unchecked error is a verifier that cannot say no. Only plain expression
// statements are flagged (not `go`/`defer` calls, and test files are never
// loaded); discarding explicitly with `_ = f()` is always accepted, as are a
// small allowlist of callees whose error results are unactionable by
// contract: the fmt print family (an error writing to stdout has no
// recovery) and the Write methods of strings.Builder and bytes.Buffer
// (documented to never return a non-nil error).
var ErrIgnored = &Analyzer{
	Name: "errignored",
	Doc:  "flag expression statements that discard an error result",
	Run:  runErrIgnored,
}

// errAllowlisted reports callees whose returned error is unactionable.
func errAllowlisted(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "strings":
		return namedRecv(fn, "strings", "Builder")
	case "bytes":
		return namedRecv(fn, "bytes", "Buffer")
	}
	return false
}

func namedRecv(fn *types.Func, pkgPath, recvName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeIs(sig.Recv().Type(), pkgPath, recvName)
}

func runErrIgnored(p *Pass) error {
	errorType := types.Universe.Lookup("error").Type()
	returnsError := func(call *ast.CallExpr) bool {
		tv, ok := p.TypesInfo.Types[call.Fun]
		if !ok || tv.IsType() { // conversions have no results
			return false
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok { // builtins and type expressions
			return false
		}
		results := sig.Results()
		for i := 0; i < results.Len(); i++ {
			if types.Identical(results.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(call) || errAllowlisted(calleeFunc(p.TypesInfo, call)) {
				return true
			}
			p.Reportf(stmt.Pos(), "error result of %s is silently discarded (handle it or assign to _)", types.ExprString(call.Fun))
			return true
		})
	}
	return nil
}
