package lint

import (
	"go/ast"
	"go/token"
)

// PoolPut flags sync.Pool.Get calls whose object can leave the function
// without a matching Put. This is the shape of the PR 4 batch-ring alias
// leak: a pooled object (or an alias into one) escaped its Get/Put bracket
// and was reused while still reachable. Within one function body, every pool
// receiver with a Get must either have a deferred Put (directly or inside a
// deferred closure), or a Put positioned between the Get and every later
// return (and at least one Put overall for the fall-off-the-end path). The
// check is lexical, not path-sensitive, so it under-approximates branches;
// designs that transfer ownership across functions — a constructor that
// draws from a pool released by Close, like the dist node and wiring pools —
// are legitimate and carry a //lint:ignore poolput with the reason written
// next to the Get.
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc:  "flag sync.Pool Get calls without a matching Put on every exit path",
	Run:  runPoolPut,
}

func runPoolPut(p *Pass) error {
	for _, unit := range funcUnits(p.Files) {
		checkPoolPut(p, unit)
	}
	return nil
}

type poolUse struct {
	firstGet token.Pos
	puts     []token.Pos // non-deferred Put calls, in source order
	deferred bool        // a deferred Put exists (defer p.Put or Put in a deferred closure)
}

func checkPoolPut(p *Pass, unit funcUnit) {
	pools := make(map[string]*poolUse)
	var returns []token.Pos

	// walk visits the unit body; deferDepth > 0 while inside a deferred call
	// (including a deferred closure body, whose Puts run at function exit).
	// Nested non-deferred closures are separate units and are skipped here,
	// except that their bodies still execute at exit when deferred.
	var walk func(n ast.Node, deferDepth int)
	walk = func(root ast.Node, deferDepth int) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walk(n.Call, deferDepth+1)
				return false
			case *ast.FuncLit:
				if deferDepth == 0 {
					return false // its own unit
				}
				return true // deferred closure: its Puts count as deferred
			case *ast.ReturnStmt:
				if deferDepth == 0 {
					returns = append(returns, n.Pos())
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					break
				}
				fn := calleeFunc(p.TypesInfo, n)
				switch {
				case isMethodOn(fn, "sync", "Pool", "Get"):
					key := receiverKey(sel.X)
					if pools[key] == nil {
						pools[key] = &poolUse{firstGet: n.Pos()}
					}
				case isMethodOn(fn, "sync", "Pool", "Put"):
					key := receiverKey(sel.X)
					if pools[key] == nil {
						pools[key] = &poolUse{}
					}
					if deferDepth > 0 {
						pools[key].deferred = true
					} else {
						pools[key].puts = append(pools[key].puts, n.Pos())
					}
				}
			}
			return true
		})
	}
	walk(unit.body, 0)

	for key, use := range pools {
		if use.firstGet == token.NoPos || use.deferred {
			continue
		}
		putAfterGet := false
		for _, put := range use.puts {
			if put > use.firstGet {
				putAfterGet = true
				break
			}
		}
		if !putAfterGet {
			p.Reportf(use.firstGet, "%s.Get in %s has no matching Put (defer %s.Put, or annotate the ownership transfer)", key, unit.name, key)
			continue
		}
		for _, ret := range returns {
			if ret < use.firstGet {
				continue
			}
			covered := false
			for _, put := range use.puts {
				if put > use.firstGet && put < ret {
					covered = true
					break
				}
			}
			if !covered {
				p.Reportf(ret, "return in %s leaks the %s.Get object acquired earlier (no Put on this path)", unit.name, key)
			}
		}
	}
}
