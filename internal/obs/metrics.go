package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric at
// registration time. A family (one metric name) may hold many children
// distinguished by their label values — the serve layer's per-route
// counters, say — but a given child's labels never change.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing float value. Callers must only
// ever Add non-negative amounts; the type does not police it beyond a
// panic, because a shrinking "counter" breaks every rate() a scraper
// computes.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas panic.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("obs: counter decreased")
	}
	addFloat(&c.bits, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative allowed).
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds delta to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a fixed-bound histogram: observations land in the first
// bucket whose upper bound is not exceeded (an implicit +Inf bucket
// catches the rest), and the exact sum and count ride along. Bounds are
// fixed at registration, so two scrapes subtract cleanly into a
// tail-latency estimate — the generalization of serve's original
// endpointStats.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	addFloat(&h.sum, v)
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counts returns the per-bucket observation counts; the final entry is
// the +Inf overflow bucket. Counts are non-cumulative.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind is the Prometheus family type.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// child is one labelled member of a family: exactly one of the live
// metric pointers or the read-on-scrape fn is set.
type child struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is every child sharing one metric name, help and type.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only; children must agree

	mu       sync.Mutex
	children map[string]*child
	order    []string
}

// Registry is a set of metric families. Registration is get-or-create:
// asking twice for the same name and labels returns the same metric, so
// call sites may resolve their counter on every use instead of holding
// it. Name collisions across types (or histogram bound mismatches)
// panic — they are programmer errors that would corrupt the exposition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry behind Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. The verification layers
// (lcp checker, engine, dist) register their cross-cutting metrics
// here; internal/serve appends it to every GET /metrics scrape.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter for name+labels, registering the family
// (with the given help text) and the child on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	ch := r.child(name, help, kindCounter, nil, nil, labels)
	return ch.counter
}

// Gauge returns the gauge for name+labels, registering on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	ch := r.child(name, help, kindGauge, nil, nil, labels)
	return ch.gauge
}

// Histogram returns the fixed-bound histogram for name+labels,
// registering on first use. Every child of one family must be created
// with identical bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	ch := r.child(name, help, kindHistogram, bounds, nil, labels)
	return ch.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotone quantities owned elsewhere (a mutex-guarded
// eviction count, say). fn must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.child(name, help, kindCounter, nil, fn, labels)
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.child(name, help, kindGauge, nil, fn, labels)
}

func (r *Registry) child(name, help string, kind metricKind, bounds []float64, fn func() float64, labels []Label) *child {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Name, name))
		}
	}
	r.mu.Lock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		if kind == kindHistogram {
			fam.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = fam
	}
	r.mu.Unlock()
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.kind, kind))
	}
	if kind == kindHistogram && !equalBounds(fam.bounds, bounds) {
		panic(fmt.Sprintf("obs: metric %q registered with differing histogram bounds", name))
	}
	key := labelKey(labels)
	fam.mu.Lock()
	defer fam.mu.Unlock()
	if ch, ok := fam.children[key]; ok {
		if (ch.fn != nil) != (fn != nil) {
			panic(fmt.Sprintf("obs: metric %q registered as both live and func-backed", name))
		}
		return ch
	}
	ch := &child{labels: append([]Label(nil), labels...), fn: fn}
	if fn == nil {
		switch kind {
		case kindCounter:
			ch.counter = &Counter{}
		case kindGauge:
			ch.gauge = &Gauge{}
		case kindHistogram:
			ch.hist = newHistogram(fam.bounds)
		}
	} else if kind == kindHistogram {
		panic("obs: func-backed histograms are not supported")
	}
	fam.children[key] = ch
	fam.order = append(fam.order, key)
	return ch
}

// labelKey serializes labels into the child map key. Label order is
// significant for the key but irrelevant for correctness: call sites
// register a given metric with one spelling.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || name == "le" { // le is reserved for histogram buckets
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
