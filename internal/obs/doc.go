// Package obs is the repo's stdlib-only observability layer: the one
// place that knows how a request is traced, how a quantity becomes a
// metric, and how a check's time splits into stages. Three independent
// pieces compose it:
//
//   - Trace IDs. NewTraceID mints a request-scoped identifier;
//     ContextWithTraceID/TraceIDFrom carry it through context so every
//     layer of a check (serve middleware, checker façade, engine, dist
//     runtime) can tag its work with the same ID. The HTTP convention
//     (adopt a client's X-Trace-Id, echo it on every response) lives in
//     internal/serve; this package only defines the ID itself.
//
//   - Metrics. A Registry holds named families of counters, gauges and
//     fixed-bound histograms — each optionally split by constant labels —
//     plus read-on-scrape func metrics for values owned elsewhere, and
//     renders them in the Prometheus text exposition format (WriteProm).
//     Default() is the process-wide registry the verification layers
//     (lcp, engine, dist) register on; internal/serve additionally keeps
//     a per-server registry for its HTTP metrics and serves both at
//     GET /metrics. The quantities exported are exactly the ones the
//     paper bounds: communication rounds, messages exchanged, and the
//     per-stage time a verification spends.
//
//   - Stage timelines. A Timeline accumulates named stage durations
//     (view/cache build, partition, rounds, verdict work) as a check
//     descends through the layers; ContextWithTimeline/TimelineFrom
//     thread it without widening any API. All Timeline methods are
//     nil-receiver-safe, so instrumented code paths cost two time.Now
//     calls when observed and a nil check when not — the hot flooding
//     loops of internal/dist are never touched either way.
package obs
