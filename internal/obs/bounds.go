package obs

// LatencyBoundsMS is the canonical latency histogram bucket upper-bound
// table, in milliseconds — one table for every consumer: serve's
// per-endpoint request histograms and its GET /stats JSON both derive
// from it, so the two surfaces can never drift. The range spans a
// cached sub-millisecond /check up to a multi-second distributed batch;
// an implicit overflow bucket catches everything beyond the last bound.
// Treat it as read-only.
var LatencyBoundsMS = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// LatencyBoundsSeconds returns a fresh copy of the canonical table
// converted to seconds, the unit Histogram records by the Prometheus
// convention.
func LatencyBoundsSeconds() []float64 {
	out := make([]float64, len(LatencyBoundsMS))
	for i, ms := range LatencyBoundsMS {
		out[i] = ms / 1e3
	}
	return out
}
