package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceHeader is the HTTP header a trace ID travels in: adopted from the
// request when present and valid, echoed on every response either way.
const TraceHeader = "X-Trace-Id"

// maxTraceIDLen bounds accepted trace IDs so a hostile client cannot
// make the server log or echo arbitrarily large headers.
const maxTraceIDLen = 128

// NewTraceID mints a 128-bit random trace ID, hex-encoded (32 chars) —
// the W3C trace-id shape. crypto/rand.Read never fails.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("obs: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether a client-supplied trace ID is acceptable
// to adopt: non-empty, bounded, and drawn from a conservative charset
// (alphanumerics plus '.', '_', '-') so it is safe to echo into headers,
// JSON bodies and log lines without escaping surprises.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

type traceKey struct{}

// ContextWithTraceID attaches a trace ID to the context.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom returns the context's trace ID, or "" when the context is
// nil or carries none.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
