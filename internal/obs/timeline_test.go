package obs

import (
	"testing"
	"time"
)

func TestTimelineObserveMergesAndOrders(t *testing.T) {
	tl := NewTimeline()
	tl.Observe("seed", 2*time.Millisecond)
	tl.Observe("flood", 5*time.Millisecond)
	tl.Observe("seed", 3*time.Millisecond)
	got := tl.Snapshot()
	if len(got) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(got))
	}
	if got[0].Name != "seed" || got[0].Total != 5*time.Millisecond || got[0].Count != 2 {
		t.Fatalf("seed stage = %+v", got[0])
	}
	if got[1].Name != "flood" || got[1].Total != 5*time.Millisecond || got[1].Count != 1 {
		t.Fatalf("flood stage = %+v", got[1])
	}
}

func TestTimelineStart(t *testing.T) {
	tl := NewTimeline()
	stop := tl.Start("work")
	time.Sleep(time.Millisecond)
	stop()
	got := tl.Snapshot()
	if len(got) != 1 || got[0].Name != "work" || got[0].Total <= 0 {
		t.Fatalf("Snapshot = %+v, want one positive 'work' stage", got)
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Observe("x", time.Second) // must not panic
	tl.Start("y")()
	if got := tl.Snapshot(); got != nil {
		t.Fatalf("nil timeline Snapshot = %v, want nil", got)
	}
}

func TestTimelineContext(t *testing.T) {
	if TimelineFrom(t.Context()) != nil {
		t.Fatal("TimelineFrom(plain ctx) should be nil")
	}
	tl := NewTimeline()
	ctx := ContextWithTimeline(t.Context(), tl)
	if TimelineFrom(ctx) != tl {
		t.Fatal("TimelineFrom did not return the attached timeline")
	}
	inner := NewTimeline()
	if got := TimelineFrom(ContextWithTimeline(ctx, inner)); got != inner {
		t.Fatal("inner timeline should shadow the outer one")
	}
}
