package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type for the text exposition format
// WriteProm emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders every family in the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE line per
// family, families sorted by name, children in registration order.
// Histograms expand into cumulative le-bucketed _bucket samples plus
// _sum and _count. The first write error aborts and is returned.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, fam := range fams {
		if err := fam.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeProm(w io.Writer) error {
	f.mu.Lock()
	children := make([]*child, 0, len(f.order))
	for _, key := range f.order {
		children = append(children, f.children[key])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, ch := range children {
		if err := f.writeChild(w, ch); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChild(w io.Writer, ch *child) error {
	switch f.kind {
	case kindCounter, kindGauge:
		v := 0.0
		switch {
		case ch.fn != nil:
			v = ch.fn()
		case ch.counter != nil:
			v = ch.counter.Value()
		case ch.gauge != nil:
			v = ch.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(ch.labels, "", 0), formatFloat(v))
		return err
	case kindHistogram:
		h := ch.hist
		counts := h.Counts()
		cum := uint64(0)
		for i, bound := range h.Bounds() {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(ch.labels, formatFloat(bound), 1), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(ch.labels, "+Inf", 1), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(ch.labels, "", 0), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(ch.labels, "", 0), h.Count())
		return err
	}
	return nil
}

// formatLabels renders {a="x",b="y"} (empty string when no labels). With
// withLE == 1 a histogram bucket's le label is appended after the
// constant labels, le's value being the precomputed string in leValue.
func formatLabels(labels []Label, leValue string, withLE int) string {
	if len(labels) == 0 && withLE == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if withLE == 1 {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(leValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
