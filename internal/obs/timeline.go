package obs

import (
	"context"
	"sync"
	"time"
)

// StageTiming is one named stage's accumulated share of a timeline:
// Total sums every observation, Count says how many there were (so an
// average is derivable, and a stage summed across concurrent workers —
// one flood per shard, say — is recognizable by Count > 1).
type StageTiming struct {
	Name  string
	Total time.Duration
	Count int64
}

// Timeline accumulates per-stage durations for one logical operation
// (one check, one HTTP request). Stages with the same name merge by
// summation; first-observation order is preserved in Snapshot. All
// methods are safe for concurrent use and no-ops on a nil receiver, so
// instrumented layers never have to branch on whether anyone is
// watching.
type Timeline struct {
	mu    sync.Mutex
	order []string
	total map[string]time.Duration
	count map[string]int64
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{total: make(map[string]time.Duration), count: make(map[string]int64)}
}

// Observe adds one duration to the named stage.
func (t *Timeline) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.total[name]; !ok {
		t.order = append(t.order, name)
	}
	t.total[name] += d
	t.count[name]++
	t.mu.Unlock()
}

// Start begins timing the named stage and returns the stop function
// that records it. On a nil timeline the returned stop is a no-op.
func (t *Timeline) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { t.Observe(name, time.Since(t0)) }
}

// Snapshot lists the accumulated stages in first-observation order. A
// nil timeline snapshots to nil.
func (t *Timeline) Snapshot() []StageTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageTiming, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, StageTiming{Name: name, Total: t.total[name], Count: t.count[name]})
	}
	return out
}

type timelineKey struct{}

// ContextWithTimeline attaches a timeline to the context. Layers below
// record their stages into it via TimelineFrom; attaching a fresh
// timeline shadows any outer one, which is how the checker façade keeps
// each proof's breakdown separate inside a batch.
func ContextWithTimeline(ctx context.Context, t *Timeline) context.Context {
	return context.WithValue(ctx, timelineKey{}, t)
}

// TimelineFrom returns the context's timeline, or nil when the context
// is nil or carries none. The nil result is directly usable: every
// Timeline method no-ops on it.
func TimelineFrom(ctx context.Context) *Timeline {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(timelineKey{}).(*Timeline)
	return t
}
