package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %v, want 3.5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge value = %v, want 6", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	c := NewRegistry().Counter("test_total", "")
	c.Add(-1)
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "", Label{"route", "/check"})
	b := r.Counter("dup_total", "", Label{"route", "/check"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("dup_total", "", Label{"route", "/prove"})
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering counter as gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("mixed", "")
	r.Gauge("mixed", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("bad-name", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.125, 1, 8})
	for _, v := range []float64{0.0625, 0.125, 0.5, 4, 64} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 1} // 0.125 is inclusive in le=0.125
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("Counts len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 68.6875 { // all values exact in binary, so the sum is too
		t.Fatalf("Sum = %v, want 68.6875", h.Sum())
	}
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched histogram bounds did not panic")
		}
	}()
	r := NewRegistry()
	r.Histogram("h", "", []float64{1, 2}, Label{"a", "x"})
	r.Histogram("h", "", []float64{1, 3}, Label{"a", "y"})
}

func TestConcurrentCounter(t *testing.T) {
	c := NewRegistry().Counter("race_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %v, want 8000", got)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "requests seen", Label{"route", "/check"}).Add(3)
	r.Gauge("a_gauge", "an example\nmultiline").Set(1.5)
	r.GaugeFunc("c_fn", "func gauge", func() float64 { return 42 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP a_gauge an example\nmultiline
# TYPE a_gauge gauge
a_gauge 1.5
# HELP b_total requests seen
# TYPE b_total counter
b_total{route="/check"} 3
# HELP c_fn func gauge
# TYPE c_fn gauge
c_fn 42
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.5"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 3
lat_seconds_count 3
`
	if got != want {
		t.Fatalf("WriteProm mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePromEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{"v", `a"b\c` + "\n"}).Inc()
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped sample %q not found in:\n%s", want, sb.String())
	}
}
