package obs_test

import (
	"testing"

	"lcp/internal/obs"
)

// TestLatencyBounds pins the canonical-table contract: the bounds are
// strictly increasing (a histogram with unordered bounds silently
// misbuckets), and the seconds view is exactly the millisecond table
// scaled — returned as a fresh copy so callers cannot corrupt the
// shared table through it.
func TestLatencyBounds(t *testing.T) {
	ms := obs.LatencyBoundsMS
	if len(ms) == 0 {
		t.Fatal("empty canonical bounds table")
	}
	for i := 1; i < len(ms); i++ {
		if ms[i] <= ms[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, ms)
		}
	}
	sec := obs.LatencyBoundsSeconds()
	if len(sec) != len(ms) {
		t.Fatalf("seconds view has %d bounds, ms table %d", len(sec), len(ms))
	}
	for i := range sec {
		if sec[i] != ms[i]/1e3 {
			t.Fatalf("bound %d: %g s, want %g", i, sec[i], ms[i]/1e3)
		}
	}
	sec[0] = -1
	if again := obs.LatencyBoundsSeconds(); again[0] == -1 {
		t.Fatal("LatencyBoundsSeconds returned a shared slice, not a copy")
	}
}
