package obs

import (
	"strings"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace IDs %q, %q: want 32 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two fresh trace IDs collided: %q", a)
	}
	if !ValidTraceID(a) {
		t.Fatalf("generated trace ID %q not self-valid", a)
	}
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"abc123", "a.b_c-d", strings.Repeat("f", 128)} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "has space", "semi;colon", `quo"te`, strings.Repeat("f", 129), "newline\n"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}

func TestTraceIDContext(t *testing.T) {
	if got := TraceIDFrom(t.Context()); got != "" {
		t.Fatalf("TraceIDFrom(plain ctx) = %q, want empty", got)
	}
	ctx := ContextWithTraceID(t.Context(), "deadbeef")
	if got := TraceIDFrom(ctx); got != "deadbeef" {
		t.Fatalf("TraceIDFrom = %q, want deadbeef", got)
	}
	if got := TraceIDFrom(nil); got != "" {
		t.Fatalf("TraceIDFrom(nil) = %q, want empty", got)
	}
}
