package config

import (
	"flag"
	"testing"

	"lcp/internal/partition"
)

// TestSetResolvesEveryKey walks the resolver through every option of
// the key table plus the "distributed" alias, and checks the derived
// dist/engine options carry the values to the right fields.
func TestSetResolvesEveryKey(t *testing.T) {
	var c Config
	for _, kv := range [][2]string{
		{"backend", "engine-dist"},
		{"workers", "5"},
		{"runtimes", "3"},
		{"partitioner", "bfs"},
		{"sharded", "true"},
		{"shards", "4"},
		{"free-running", "true"},
	} {
		if err := c.Set(kv[0], kv[1]); err != nil {
			t.Fatalf("Set(%q, %q): %v", kv[0], kv[1], err)
		}
	}
	if c.Backend != BackendEngineDist || c.Workers != 5 || c.Runtimes != 3 {
		t.Fatalf("top-level fields wrong: %+v", c)
	}
	if c.Partitioner == nil || c.Partitioner.Name() != "bfs" {
		t.Fatalf("partitioner not resolved: %+v", c.Partitioner)
	}
	eo := c.EngineOptions()
	if eo.Workers != 5 || eo.Shards != 3 || eo.Partitioner.Name() != "bfs" {
		t.Fatalf("EngineOptions wrong: %+v", eo)
	}
	do := c.DistOptions()
	if !do.Sharded || do.Shards != 4 || !do.FreeRunning || do.Partitioner.Name() != "bfs" {
		t.Fatalf("DistOptions wrong: %+v", do)
	}

	var d Config
	if err := d.Set("distributed", "true"); err != nil {
		t.Fatal(err)
	}
	if d.Backend != BackendEngineDist {
		t.Fatalf("distributed=true resolved to %q", d.Backend)
	}
	if err := d.Set("distributed", "false"); err != nil {
		t.Fatal(err)
	}
	if d.Backend != BackendEngine {
		t.Fatalf("distributed=false resolved to %q", d.Backend)
	}
}

func TestSetRejectsBadValues(t *testing.T) {
	var c Config
	for _, kv := range [][2]string{
		{"backend", "quantum"},
		{"workers", "-1"},
		{"workers", "many"},
		{"runtimes", "-2"},
		{"partitioner", "psychic"},
		{"sharded", "maybe"},
		{"distributed", "sometimes"},
		{"warp", "9"},
	} {
		if err := c.Set(kv[0], kv[1]); err == nil {
			t.Fatalf("Set(%q, %q) accepted", kv[0], kv[1])
		}
	}
}

// TestShardsImpliesSharded: a non-zero shard count turns the sharded
// layout on, matching WithShards at the façade.
func TestShardsImpliesSharded(t *testing.T) {
	var c Config
	if err := c.Set("shards", "2"); err != nil {
		t.Fatal(err)
	}
	if !c.Dist.Sharded {
		t.Fatal("shards=2 did not imply sharded")
	}
}

// TestFlagsGeneratedFromKeyTable: every Options() key registers as a
// flag, and parsing a full command line lands in the config through
// the same Set resolver.
func TestFlagsGeneratedFromKeyTable(t *testing.T) {
	var c Config
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Flags(fs, &c)
	for _, o := range Options() {
		if fs.Lookup(o.Key) == nil {
			t.Fatalf("option %q has no generated flag", o.Key)
		}
	}
	err := fs.Parse([]string{
		"-backend", "dist", "-workers", "2", "-runtimes", "4",
		"-partitioner", "greedy", "-sharded", "-shards", "3", "-free-running",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Backend != BackendDist || c.Workers != 2 || c.Runtimes != 4 ||
		c.Partitioner.Name() != "greedy" || !c.Dist.Sharded || c.Dist.Shards != 3 || !c.Dist.FreeRunning {
		t.Fatalf("flag parse landed wrong: %+v", c)
	}

	var bad Config
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	Flags(fs2, &bad)
	if err := fs2.Parse([]string{"-backend", "nope"}); err == nil {
		t.Fatal("bad -backend accepted")
	}
}

// TestDefaults pins the zero value: engine backend, contiguous
// partitioner name, valid.
func TestDefaults(t *testing.T) {
	var c Config
	if c.ResolvedBackend() != BackendEngine {
		t.Fatalf("zero backend resolves to %q", c.ResolvedBackend())
	}
	if c.PartitionerName() != (partition.Contiguous{}).Name() {
		t.Fatalf("zero partitioner name %q", c.PartitionerName())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Backend = "bogus"
	if err := c.Validate(); err == nil {
		t.Fatal("bogus backend validated")
	}
}
