// Package config defines the single configuration object behind every
// verification entry point: the lcp.Checker functional options, the
// lcpserve command-line flags, and the HTTP request options of
// internal/serve all resolve into a Config, and dist.Options /
// engine.Options are derived from it. The package exists so the four
// execution paths (sequential reference, message-passing runtime,
// cached-view engine, halo-sharded distributed engine) are parameterized
// by one object instead of three hand-synchronized option structs.
package config

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"lcp/internal/dist"
	"lcp/internal/engine"
	"lcp/internal/partition"
)

// Backend names one of the four execution paths a Config selects.
type Backend string

const (
	// BackendCore is the sequential reference runner: one BFS view per
	// node per proof, no caching, no concurrency. The other three are
	// property-tested verdict-identical to it.
	BackendCore Backend = "core"
	// BackendDist is the message-passing LOCAL runtime: node automata
	// flood their radius-r balls over ports for Radius() rounds. The
	// Dist tunables (sharded scheduler, free-running synchronization)
	// apply here.
	BackendDist Backend = "dist"
	// BackendEngine is the amortized shared-memory engine: radius-r view
	// skeletons cached per instance, checks served by a worker pool.
	BackendEngine Backend = "engine"
	// BackendEngineDist is the distributed engine: the instance is cut
	// into Runtimes radius-r halos (by Partitioner), each owned by a
	// reusable message-passing runtime.
	BackendEngineDist Backend = "engine-dist"
	// BackendDistTCP is the multi-process scale-out: the instance is
	// partitioned across external lcpworker processes (WorkerAddrs), each
	// flooding its shard over TCP, with the local checker acting as the
	// fan-out coordinator. The only backend whose memory footprint is
	// spread over multiple processes — and hence multiple machines.
	BackendDistTCP Backend = "dist-tcp"
)

// Backends lists the valid backend names, in documentation order.
func Backends() []string {
	return []string{string(BackendCore), string(BackendDist), string(BackendEngine), string(BackendEngineDist), string(BackendDistTCP)}
}

// ParseBackend resolves a backend name.
func ParseBackend(name string) (Backend, error) {
	switch Backend(name) {
	case BackendCore, BackendDist, BackendEngine, BackendEngineDist, BackendDistTCP:
		return Backend(name), nil
	}
	return "", fmt.Errorf("unknown backend %q (valid: %s)", name, strings.Join(Backends(), ", "))
}

// Config is the unified verification configuration. The zero value
// selects the engine backend with library defaults everywhere.
//
// Exactly one resolver feeds it from text: Set, which both the
// lcpserve flags (see Flags) and serve's JSON request options go
// through, so a knob spelled "partitioner" means the same thing on the
// command line, in an HTTP body, and in a library call.
type Config struct {
	// Backend picks the execution path; empty means BackendEngine.
	Backend Backend
	// Workers bounds the engine's shared-memory worker pool
	// (0 = GOMAXPROCS).
	Workers int
	// Runtimes is the number of message-passing runtimes the
	// engine-dist backend spans, each owning one partitioner group's
	// radius-r halo (0 = 1).
	Runtimes int
	// Partitioner chooses the node→shard assignment policy, applied at
	// both levels like lcpserve's -partitioner flag: the engine-dist
	// halo cut and the sharded scheduler layout inside each runtime.
	// nil means partition.Contiguous{}.
	Partitioner partition.Partitioner
	// Dist carries the message-passing scheduler tunables (sharded
	// layout, shard count, free-running synchronization, port buffers).
	// Its Partitioner field, when nil, inherits Config.Partitioner.
	Dist dist.Options
	// BatchColumns selects whether CheckBatch on the engine backend
	// takes the column-wise batch path (one ball walk feeding all k
	// proofs). The zero value auto-engages it at
	// BatchColumnsAutoThreshold proofs and above.
	BatchColumns BatchColumnsMode
	// WorkerAddrs lists the lcpworker control addresses
	// (host:port) the dist-tcp backend fans out to, one shard per
	// worker. Required by — and only meaningful on — that backend.
	WorkerAddrs []string
}

// BatchColumnsMode is the tri-state batch-strategy knob behind the
// "batch-columns" option key: auto (columns for large enough batches),
// forced on, or forced off (the per-proof loop).
type BatchColumnsMode int

const (
	// BatchColumnsAuto engages the columns path for batches of
	// BatchColumnsAutoThreshold proofs or more.
	BatchColumnsAuto BatchColumnsMode = iota
	// BatchColumnsOn always takes the columns path on the engine
	// backend, whatever the batch size.
	BatchColumnsOn
	// BatchColumnsOff always takes the per-proof loop.
	BatchColumnsOff
)

// BatchColumnsAutoThreshold is the smallest batch the auto mode routes
// through the columns path. Below it the table load and column
// bookkeeping outweigh the shared ball walk.
const BatchColumnsAutoThreshold = 4

// Engaged reports whether a k-proof batch takes the columns path under
// this mode.
func (m BatchColumnsMode) Engaged(k int) bool {
	switch m {
	case BatchColumnsOn:
		return k > 0
	case BatchColumnsOff:
		return false
	default:
		return k >= BatchColumnsAutoThreshold
	}
}

// String renders the mode in the vocabulary Set accepts.
func (m BatchColumnsMode) String() string {
	switch m {
	case BatchColumnsOn:
		return "true"
	case BatchColumnsOff:
		return "false"
	default:
		return "auto"
	}
}

// ResolvedBackend is Backend with the zero value defaulted.
func (c Config) ResolvedBackend() Backend {
	if c.Backend == "" {
		return BackendEngine
	}
	return c.Backend
}

// PartitionerName is the registry name of the configured partitioner
// ("contiguous" for the nil default) — the cache key serve uses for
// per-partitioner engines.
func (c Config) PartitionerName() string {
	if c.Partitioner == nil {
		return partition.Contiguous{}.Name()
	}
	return c.Partitioner.Name()
}

// Validate rejects impossible configurations: an unknown backend name
// assigned directly to the field, or the dist-tcp backend with no
// worker fleet to fan out to.
func (c Config) Validate() error {
	if c.Backend != "" {
		if _, err := ParseBackend(string(c.Backend)); err != nil {
			return err
		}
	}
	if c.Backend == BackendDistTCP && len(c.WorkerAddrs) == 0 {
		return fmt.Errorf("backend %q needs worker addresses (the worker-addrs option: host:port,...); start lcpworker processes and list them", BackendDistTCP)
	}
	return nil
}

// DistOptions derives the message-passing scheduler options: the Dist
// tunables with the shared partitioner policy filled in.
func (c Config) DistOptions() dist.Options {
	d := c.Dist
	if d.Partitioner == nil {
		d.Partitioner = c.Partitioner
	}
	return d
}

// EngineOptions derives the engine configuration: worker pool, halo
// runtimes, halo partitioner, and the scheduler options of every
// runtime.
func (c Config) EngineOptions() engine.Options {
	return engine.Options{
		Workers:     c.Workers,
		Shards:      c.Runtimes,
		Partitioner: c.Partitioner,
		Dist:        c.DistOptions(),
	}
}

// Option describes one textual configuration key of the shared
// resolver: its Set key (also the lcpserve flag name), whether it is
// boolean (registered as a toggle flag), and its usage string.
type Option struct {
	Key   string
	Bool  bool
	Usage string
}

// Options is the resolver's key table. Flags registers exactly these;
// serve accepts the request-level subset of them. Keeping the table in
// one place is what "no duplicated JSON/flag parsing" means.
func Options() []Option {
	return []Option{
		{Key: "backend", Usage: "execution path: " + strings.Join(Backends(), ", ")},
		{Key: "workers", Usage: "engine worker pool size (0 = GOMAXPROCS)"},
		{Key: "runtimes", Usage: "message-passing runtimes per instance on the engine-dist backend, each owning one partitioner group's radius-r halo (0 = 1; this is what -shards meant before the facade redesign)"},
		{Key: "partitioner", Usage: "node->shard partitioner: " + strings.Join(partition.Names(), ", ") + " (applied to the engine-dist halo cut and the sharded scheduler layout)"},
		{Key: "sharded", Bool: true, Usage: "batch message-passing nodes onto shared scheduler goroutines instead of one goroutine per node"},
		{Key: "shards", Usage: "scheduler goroutines per message-passing runtime in sharded mode (0 = GOMAXPROCS; implies sharded). NOTE: pre-facade releases spelled this -dist-shards and used -shards for what is now -runtimes"},
		{Key: "free-running", Bool: true, Usage: "run message-passing runtimes without a global round barrier (α-synchronization)"},
		{Key: "batch-columns", Usage: fmt.Sprintf("engine-backend batch strategy: auto (column-wise for batches of >= %d proofs), true (always column-wise), false (per-proof loop)", BatchColumnsAutoThreshold)},
		{Key: "worker-addrs", Usage: "comma-separated lcpworker control addresses (host:port,...) for the dist-tcp backend, one shard per worker"},
	}
}

// Set applies one textual option to the config. It accepts every key in
// Options plus "distributed", the HTTP request alias that serve has
// always spoken: "distributed=true" selects the engine-dist backend,
// "distributed=false" the engine backend.
func (c *Config) Set(key, value string) error {
	fail := func(err error) error { return fmt.Errorf("option %q: %v", key, err) }
	switch key {
	case "backend":
		b, err := ParseBackend(value)
		if err != nil {
			return fail(err)
		}
		c.Backend = b
	case "distributed":
		on, err := strconv.ParseBool(value)
		if err != nil {
			return fail(err)
		}
		if on {
			c.Backend = BackendEngineDist
		} else {
			c.Backend = BackendEngine
		}
	case "workers":
		n, err := nonNegativeInt(value)
		if err != nil {
			return fail(err)
		}
		c.Workers = n
	case "runtimes":
		n, err := nonNegativeInt(value)
		if err != nil {
			return fail(err)
		}
		c.Runtimes = n
	case "partitioner":
		p, err := partition.ByName(value)
		if err != nil {
			return fail(err)
		}
		c.Partitioner = p
	case "sharded":
		on, err := strconv.ParseBool(value)
		if err != nil {
			return fail(err)
		}
		c.Dist.Sharded = on
	case "shards":
		n, err := nonNegativeInt(value)
		if err != nil {
			return fail(err)
		}
		c.Dist.Shards = n
		if n > 0 {
			c.Dist.Sharded = true
		}
	case "free-running":
		on, err := strconv.ParseBool(value)
		if err != nil {
			return fail(err)
		}
		c.Dist.FreeRunning = on
	case "worker-addrs":
		var addrs []string
		for _, a := range strings.Split(value, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			addrs = append(addrs, a)
		}
		if len(addrs) == 0 {
			return fail(fmt.Errorf("no addresses in %q", value))
		}
		c.WorkerAddrs = addrs
	case "batch-columns":
		if value == "auto" {
			c.BatchColumns = BatchColumnsAuto
			break
		}
		on, err := strconv.ParseBool(value)
		if err != nil {
			return fail(fmt.Errorf("want auto, true, or false: %v", err))
		}
		if on {
			c.BatchColumns = BatchColumnsOn
		} else {
			c.BatchColumns = BatchColumnsOff
		}
	default:
		return fmt.Errorf("unknown option %q", key)
	}
	return nil
}

func nonNegativeInt(value string) (int, error) {
	n, err := strconv.Atoi(value)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", value)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative value %d", n)
	}
	return n, nil
}

// Flags registers every option of the key table on the flag set, all
// funneling through c.Set — the lcpserve flag surface is generated from
// the same table the HTTP options resolve against, so the two can never
// drift. Boolean options register as toggles (-sharded), the rest as
// value flags (-runtimes 4).
func Flags(fs *flag.FlagSet, c *Config) {
	for _, o := range Options() {
		key := o.Key
		if o.Bool {
			fs.BoolFunc(key, o.Usage, func(v string) error { return c.Set(key, v) })
		} else {
			fs.Func(key, o.Usage, func(v string) error { return c.Set(key, v) })
		}
	}
}
