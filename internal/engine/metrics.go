package engine

import "lcp/internal/obs"

// The engine's observable quantities are its amortization story: how
// often a check found the radius's skeleton cache warm, how much was
// built when it wasn't, and how much flooding the halo cut duplicates
// across the sharded runtimes (carriers are exactly the nodes paid for
// more than once — the quantity the locality-aware partitioners
// minimize).
var (
	engineViewHits    = obs.Default().Counter("lcp_engine_cache_hits_total", "Checks that found their radius's view-skeleton cache already built.")
	engineViewMisses  = obs.Default().Counter("lcp_engine_cache_misses_total", "Checks that built their radius's view-skeleton cache.")
	engineSkeletons   = obs.Default().Counter("lcp_engine_skeletons_built_total", "Proof-free view skeletons constructed by cache builds.")
	engineHaloOwned   = obs.Default().Counter("lcp_engine_halo_nodes_total", "Nodes wired into sharded runtimes, split by role: owned nodes decide, carrier nodes are halo padding that only floods (duplicated work across shards).", obs.Label{Name: "kind", Value: "owned"})
	engineHaloCarrier = obs.Default().Counter("lcp_engine_halo_nodes_total", "Nodes wired into sharded runtimes, split by role: owned nodes decide, carrier nodes are halo padding that only floods (duplicated work across shards).", obs.Label{Name: "kind", Value: "carrier"})
	engineRuntimes    = obs.Default().Counter("lcp_engine_runtimes_wired_total", "Reusable dist runtimes wired by netsFor cache builds.")
	// engineBatchColumns counts proofs served by the column-wise batch
	// path, the unit the ≥2× ns/proof target is measured in.
	engineBatchColumns = obs.Default().Counter("lcp_engine_batch_columns_total", "Proofs verified through the column-wise batch path (CheckBatchColumns).")
)
