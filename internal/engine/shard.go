package engine

import (
	"context"
	"fmt"
	"sync"

	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/obs"
	"lcp/internal/partition"
)

// The sharded message-passing path. A single dist runtime spans the
// whole graph; for large instances the engine instead spans several
// reusable runtimes, each owning a group of nodes chosen by the
// configured partitioner (and each free to run goroutine-per-node or
// the sharded scheduler, per Options.Dist). A shard's runtime is wired
// over the group's radius-r halo — every node within distance r of an
// owned node — so flooding inside the shard assembles exactly the
// views the owned nodes would see in the full graph (balls nest:
// ball(v, r) of an owned v lies entirely inside the halo, and shortest
// paths from v stay in the ball). Only owned verdicts are reported;
// halo-only nodes exist to carry messages. The halo is where the
// partitioner earns its keep: carriers are duplicated flooding work,
// one copy per shard whose boundary they pad, and a topologically
// tight owned set has a thin boundary — a locality-aware cut shrinks
// exactly the nodes that are paid for more than once.
type shardedNets struct {
	shards []*distShard
}

type distShard struct {
	owned []int // nodes whose verdicts this shard reports
	net   *dist.Network
}

func (sn *shardedNets) close() {
	for _, s := range sn.shards {
		s.net.Close()
	}
}

// netsFor returns the sharded runtimes for the radius, wiring them on
// first use behind the radius's build guard. tl, when non-nil, receives
// the cold build's cost split into the "engine.partition" (node→shard
// assignment) and "engine.wire" (halo construction + runtime wiring)
// stages; warm calls contribute nothing.
func (e *Engine) netsFor(radius int, tl *obs.Timeline) (*shardedNets, error) {
	e.mu.Lock()
	c, ok := e.nets[radius]
	if !ok {
		c = &netCache{}
		e.nets[radius] = c
	}
	e.mu.Unlock()
	c.once.Do(func() {
		nodes := e.in.G.Nodes()
		sn := &shardedNets{}
		shards := e.opt.shards()
		if shards > len(nodes) {
			shards = len(nodes)
		}
		var groups [][]int
		if shards > 0 && len(nodes) > 0 {
			stop := tl.Start("engine.partition")
			assign := e.opt.partitioner().Assign(e.in.G, shards)
			if err := partition.Validate(assign, len(nodes), shards); err != nil {
				stop()
				c.err = fmt.Errorf("engine: partitioner %q: %v", e.opt.partitioner().Name(), err)
				return
			}
			groups = partition.Groups(e.in.G, assign, shards)
			stop()
		}
		stopWire := tl.Start("engine.wire")
		defer stopWire()
		for _, owned := range groups {
			if len(owned) == 0 {
				continue
			}
			sub := e.in
			dopt := e.opt.Dist
			if len(owned) < len(nodes) {
				sub = haloInstance(e.in, owned, radius)
				// Halo-only nodes exist to carry messages: they flood
				// but never assemble a view or run the verifier (their
				// verdicts would be discarded, and their halo-clipped
				// views could even panic a structure-asserting
				// verifier).
				dopt.DecideOnly = owned
			}
			nw, err := dist.NewNetwork(sub, dopt)
			if err != nil {
				sn.close()
				c.err = err
				return
			}
			engineHaloOwned.Add(float64(len(owned)))
			engineHaloCarrier.Add(float64(sub.G.N() - len(owned)))
			engineRuntimes.Inc()
			sn.shards = append(sn.shards, &distShard{owned: owned, net: nw})
		}
		c.sn = sn
	})
	return c.sn, c.err
}

// HaloInstance restricts the instance to the union of radius-r balls
// around the owned nodes — the exported surface of the engine's halo
// cutter, used by the multi-process coordinator to ship each worker its
// shard's slice: at radius 1 the halo contains every owned node with
// all incident edges and their endpoints, which is exactly the round-0
// knowledge the transport-backed shard runner needs (everything deeper
// arrives over the wire).
func HaloInstance(in *core.Instance, owned []int, radius int) *core.Instance {
	return haloInstance(in, owned, radius)
}

// haloInstance restricts the instance to the union of radius-r balls
// around the owned nodes. The graph is induced on the halo; the
// labelling maps are shared with the parent (records only ever read
// entries of member nodes, and the nil-map conventions must match the
// full instance for verdict equivalence).
func haloInstance(in *core.Instance, owned []int, radius int) *core.Instance {
	seen := make(map[int]bool, len(owned))
	frontier := make([]int, 0, len(owned))
	halo := make([]int, 0, len(owned))
	for _, v := range owned {
		seen[v] = true
		frontier = append(frontier, v)
		halo = append(halo, v)
	}
	for d := 1; d <= radius && len(frontier) > 0; d++ {
		var next []int
		for _, u := range frontier {
			for _, w := range in.G.UndirectedNeighbors(u) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
					halo = append(halo, w)
				}
			}
		}
		frontier = next
	}
	return &core.Instance{
		G:         in.G.Induced(halo),
		NodeLabel: in.NodeLabel,
		EdgeLabel: in.EdgeLabel,
		Weights:   in.Weights,
		Global:    in.Global,
	}
}

// CheckDistributed verifies the proof on the message-passing path: each
// shard's reusable runtime floods its halo concurrently with the
// others, and the owned verdicts merge into one result. Verdicts are
// identical to dist.Check on the full instance (and hence to
// core.Check).
func (e *Engine) CheckDistributed(p core.Proof, v core.Verifier) (*core.Result, error) {
	//lint:ignore ctxflow ctx-less CheckDistributed is the documented uncancellable entry point; CheckDistributedCtx is the threaded variant
	return e.CheckDistributedCtx(context.Background(), p, v)
}

// CheckDistributedCtx is CheckDistributed with context cancellation:
// the context threads into every shard's runtime, where lockstep runs
// abort between communication rounds (see dist.Network.CheckCtx), so a
// cancelled caller stops burning shard goroutines instead of flooding
// every halo to completion.
func (e *Engine) CheckDistributedCtx(ctx context.Context, p core.Proof, v core.Verifier) (*core.Result, error) {
	if v == nil {
		return nil, fmt.Errorf("engine: nil verifier")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tl := obs.TimelineFrom(ctx)
	sn, err := e.netsFor(v.Radius(), tl)
	if err != nil {
		return nil, err
	}
	// The shards flood concurrently, each recording its own dist.* stages
	// into the same timeline; "engine.run" is the wall time of the whole
	// fan-out (so dist stage totals can exceed it — Count discloses the
	// summation).
	stopRun := tl.Start("engine.run")
	defer stopRun()
	res := &core.Result{Outputs: make(map[int]bool, e.in.G.N())}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for _, s := range sn.shards {
		wg.Add(1)
		go func(s *distShard) {
			defer wg.Done()
			sres, err := s.net.CheckCtx(ctx, p, v)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for _, id := range s.owned {
				res.Outputs[id] = sres.Outputs[id]
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
