package engine

import (
	"context"
	"sync/atomic"

	"lcp/internal/core"
	"lcp/internal/obs"
)

// ColumnsOptions tunes one column-wise batch check.
type ColumnsOptions struct {
	// StopOnReject stops evaluating a column as soon as any node has
	// rejected it: later nodes skip the column entirely, so its Result
	// carries verdicts only for the nodes visited before (and including)
	// the first rejection each worker observed. The batch verdict per
	// proof (Accepted — every node present and accepting) is unchanged;
	// only the completeness of rejected columns' output maps is traded
	// for speed. Leave it false to get output maps identical to
	// core.Check for every column.
	StopOnReject bool
}

// Per-node, per-column verdict states of the column walk. Zero means
// the column was skipped at this node (possible only under
// StopOnReject, after the column has already rejected elsewhere).
const (
	colSkipped uint8 = iota
	colAccept
	colReject
)

// CheckBatchColumns verifies many proofs in one pass over the cached
// skeletons: the batch is loaded into a node-major core.ProofColumns
// table and each node is visited once, evaluating all k columns against
// the same skeleton before moving on. Results are one per proof in
// order, verdict-for-verdict identical to core.Check.
//
// Two things make this cheaper than k independent walks. The ball walk
// itself — skeleton fetch, view copy, locality bookkeeping — is paid
// once per node instead of once per (node, proof). And because a
// verifier's output at v is a function of the radius-r view alone (the
// model's locality definition, see the core package comment), columns
// whose entries agree on every ball member of v must receive the same
// verdict there — so the engine verifies one representative per group
// of identical ball restrictions and copies the verdict to the rest. A
// tampering sweep (k near-identical proofs) collapses to roughly one
// verification per node plus cheap column compares.
//
// The dedup assumes verifiers are deterministic and read the proof only
// through View.ProofOf/BallProof — both already part of the Verifier
// contract.
func (e *Engine) CheckBatchColumns(proofs []core.Proof, v core.Verifier) []*core.Result {
	//lint:ignore ctxflow ctx-less CheckBatchColumns is the documented uncancellable entry point; CheckBatchColumnsCtx is the threaded variant
	out, _ := e.CheckBatchColumnsCtx(context.Background(), proofs, v)
	return out
}

// CheckBatchColumnsCtx is CheckBatchColumns with context cancellation:
// the walk aborts at the next node boundary once the context is done.
// Unlike CheckBatchCtx (whose unit of work is a whole proof), no column
// has a complete verdict until the walk finishes, so cancellation
// returns nil results together with ctx.Err().
func (e *Engine) CheckBatchColumnsCtx(ctx context.Context, proofs []core.Proof, v core.Verifier) ([]*core.Result, error) {
	return e.CheckBatchColumnsWith(ctx, proofs, v, ColumnsOptions{})
}

// CheckBatchColumnsWith is CheckBatchColumnsCtx with per-batch options.
func (e *Engine) CheckBatchColumnsWith(ctx context.Context, proofs []core.Proof, v core.Verifier, opt ColumnsOptions) ([]*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := len(proofs)
	if k == 0 {
		return []*core.Result{}, nil
	}
	tl := obs.TimelineFrom(ctx)
	cache := e.cacheFor(v.Radius(), tl)
	views := cache.views
	balls := cache.ballIndexes(e.in.G)
	pc := e.columnsFor(proofs)
	defer e.releaseColumns(pc)
	nodes := e.in.G.Nodes()
	// One node-major tri-state cell per (node, column); each cell is
	// written by exactly one range worker (the one owning the node), so
	// the slice needs no synchronization.
	outs := make([]uint8, len(nodes)*k)
	// Under StopOnReject the rejected flags are shared across workers —
	// a rejection observed in one range should spare every range the
	// column's remaining nodes — hence the atomics.
	var rejected []atomic.Bool
	if opt.StopOnReject {
		rejected = make([]atomic.Bool, k)
	}
	engineBatchColumns.Add(float64(k))
	stop := tl.Start("engine.batch")
	done := ctx.Done()
	forEachRange(len(nodes), e.opt.workers(), func(lo, hi int) {
		// reps holds, per node, one column index per distinct ball
		// restriction seen so far — the columns actually verified.
		reps := make([]int32, 0, 16)
		var w core.View
		for i := lo; i < hi; i++ {
			if done != nil && ctx.Err() != nil {
				return
			}
			base := i * k
			ball := balls[i]
			w = *views[i]
			reps = reps[:0]
			for j := 0; j < k; j++ {
				if rejected != nil && rejected[j].Load() {
					continue
				}
				verdict := colSkipped
				for _, r := range reps {
					if sameOnBall(pc, ball, j, int(r)) {
						verdict = outs[base+int(r)]
						break
					}
				}
				if verdict == colSkipped {
					reps = append(reps, int32(j))
					w.Flat = pc.Column(j)
					if v.Verify(&w) {
						verdict = colAccept
					} else {
						verdict = colReject
					}
				}
				outs[base+j] = verdict
				if rejected != nil && verdict == colReject {
					rejected[j].Store(true)
				}
			}
		}
	})
	stop()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]*core.Result, k)
	for j := 0; j < k; j++ {
		m := make(map[int]bool, len(nodes))
		for i, id := range nodes {
			switch outs[i*k+j] {
			case colAccept:
				m[id] = true
			case colReject:
				m[id] = false
			}
		}
		results[j] = &core.Result{Outputs: m}
	}
	return results, nil
}

// sameOnBall reports whether columns j and r agree on every ball member
// of the node being visited — the precondition for sharing a verdict.
func sameOnBall(pc *core.ProofColumns, ball []int32, j, r int) bool {
	for _, bi := range ball {
		if !pc.SameAt(int(bi), j, r) {
			return false
		}
	}
	return true
}

// columnsFor draws a pooled batch table and loads the proofs into it.
// The table is owned by one batch check; return it with releaseColumns
// once the walk is done.
func (e *Engine) columnsFor(proofs []core.Proof) *core.ProofColumns {
	//lint:ignore poolput ownership transfer: the batch check that called columnsFor returns the table via releaseColumns once its walk finishes
	pc, ok := e.columns.Get().(*core.ProofColumns)
	if !ok {
		pc = core.NewProofColumns(e.in.G)
	}
	pc.Load(proofs)
	return pc
}

func (e *Engine) releaseColumns(pc *core.ProofColumns) { e.columns.Put(pc) }
