package engine_test

// Context-cancellation tests for the engine's batch and distributed
// paths (the façade relies on both behaving uniformly).

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/engine"
)

// TestCheckBatchCtxAbortsBetweenProofs: a context cancelled during
// proof 0's verification stops the batch at the next proof boundary,
// returning the completed prefix plus the context's error.
func TestCheckBatchCtxAbortsBetweenProofs(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(10))
	ctx, cancel := context.WithCancel(context.Background())
	v := core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		cancel()
		return true
	}}
	e := engine.New(in, engine.Options{Workers: 1})
	results, err := e.CheckBatchCtx(ctx, []core.Proof{{}, {}, {}}, v)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if len(results) != 1 {
		t.Fatalf("completed %d proofs before aborting, want 1", len(results))
	}
	if !results[0].Accepted() {
		t.Fatal("proof 0's result corrupted by the abort")
	}
}

// TestCheckBatchCtxBackgroundMatchesCheckBatch: without cancellation
// the ctx variant is CheckBatch.
func TestCheckBatchCtxBackgroundMatchesCheckBatch(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(12))
	scheme := lcp.BipartiteScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	proofs := []core.Proof{p, core.FlipBit(p, 1), p.Truncated(1)}
	e := engine.New(in, engine.Options{})
	got, err := e.CheckBatchCtx(context.Background(), proofs, scheme.Verifier())
	if err != nil {
		t.Fatal(err)
	}
	want := e.CheckBatch(proofs, scheme.Verifier())
	if len(got) != len(want) {
		t.Fatalf("length mismatch: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Outputs, want[i].Outputs) {
			t.Fatalf("proof %d diverged", i)
		}
	}
}

// TestCheckDistributedCtxPreCancelled: a cancelled context fails the
// sharded distributed path before any halo floods.
func TestCheckDistributedCtxPreCancelled(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(16))
	scheme := lcp.BipartiteScheme()
	e := engine.New(in, engine.Options{Shards: 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.CheckDistributedCtx(ctx, core.Proof{}, scheme.Verifier()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	// The engine must keep serving after a cancelled distributed check.
	res, err := e.CheckDistributed(core.Proof{}, scheme.Verifier())
	if err != nil {
		t.Fatal(err)
	}
	want := core.Check(in, core.Proof{}, scheme.Verifier())
	if !reflect.DeepEqual(res.Outputs, want.Outputs) {
		t.Fatal("engine diverged after cancelled distributed check")
	}
}
