package engine_test

// Property tests for the amortized engine: every serving shape must be
// verdict-for-verdict identical to core.Check, across the whole scheme
// catalog, including adversarial (tampered, truncated, random) proofs,
// and regardless of worker/shard configuration.

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/engine"
	"lcp/internal/graph"
	"lcp/internal/partition"
	"lcp/internal/ports"
)

func resultsEqual(t *testing.T, ctx string, got, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Fatalf("%s: outputs differ:\n got %v\nwant %v", ctx, got.Outputs, want.Outputs)
	}
	if !reflect.DeepEqual(got.Rejectors(), want.Rejectors()) {
		t.Fatalf("%s: rejectors differ: %v vs %v", ctx, got.Rejectors(), want.Rejectors())
	}
}

// checkAllPaths runs one proof through every engine path and demands
// agreement with the sequential reference.
func checkAllPaths(t *testing.T, ctx string, e *engine.Engine, in *core.Instance, p core.Proof, v core.Verifier) {
	t.Helper()
	want := core.Check(in, p, v)
	resultsEqual(t, ctx+" [check-proof]", e.CheckProof(p, v), want)

	dres, err := e.CheckDistributed(p, v)
	if err != nil {
		t.Fatalf("%s: CheckDistributed: %v", ctx, err)
	}
	resultsEqual(t, ctx+" [sharded-dist]", dres, want)

	stream := &core.Result{Outputs: make(map[int]bool, in.G.N())}
	for verdict := range e.CheckStream(context.Background(), p, v) {
		if _, dup := stream.Outputs[verdict.Node]; dup {
			t.Fatalf("%s: duplicate verdict for node %d", ctx, verdict.Node)
		}
		stream.Outputs[verdict.Node] = verdict.Accept
	}
	resultsEqual(t, ctx+" [stream]", stream, want)
}

func TestEngineAgreesWithCoreAcrossCatalog(t *testing.T) {
	const n = 14
	for _, exp := range lcp.Catalog() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			size := n
			if size < exp.MinN {
				size = exp.MinN
			}
			v := exp.Scheme.Verifier()
			in := exp.MakeYes(size, 1)
			// Shards chosen to exercise real halo clipping at this size;
			// the BFS partitioner makes the halo cut follow topology
			// instead of identifier ranges, catalog-wide.
			e := engine.New(in, engine.Options{Workers: 3, Shards: 3, Partitioner: partition.BFSChunks{}})
			p, err := exp.Scheme.Prove(in)
			if err != nil {
				t.Fatalf("prove yes-instance: %v", err)
			}
			checkAllPaths(t, "honest", e, in, p, v)
			for seed := int64(0); seed < 3; seed++ {
				checkAllPaths(t, fmt.Sprintf("tampered-%d", seed), e, in, core.FlipBit(p, seed), v)
			}
			checkAllPaths(t, "truncated", e, in, p.Truncated(1), v)
			if exp.MakeNo != nil {
				no := exp.MakeNo(size, 2)
				ne := engine.New(no, engine.Options{Workers: 2, Shards: 4, Partitioner: partition.GreedyBalanced{}})
				checkAllPaths(t, "no-empty-proof", ne, no, core.Proof{}, v)
				for _, bits := range []int{1, 16} {
					checkAllPaths(t, fmt.Sprintf("no-random-%d", bits), ne, no,
						core.RandomProof(no, bits, 9), v)
				}
			}
		})
	}
}

// TestEngineWorkerShardConfigurations: the verdict map is invariant
// under every worker/shard split, on an instance where nodes reject.
func TestEngineWorkerShardConfigurations(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(16)) // even cycle
	v := lcp.OddNScheme().Verifier()     // rejects somewhere
	p := core.RandomProof(in, 8, 4)
	want := core.Check(in, p, v)
	if want.Accepted() {
		t.Fatal("setup: random odd-n proof unexpectedly accepted on even cycle")
	}
	for _, opt := range []engine.Options{
		{},
		{Workers: 1},
		{Workers: 1, Shards: 1},
		{Workers: 5, Shards: 2},
		{Workers: 2, Shards: 7},
		{Shards: 16}, // one node per shard
		{Shards: 99}, // more shards than nodes
		{Shards: 3, Dist: dist.Options{FreeRunning: true}},
		{Shards: 3, Partitioner: partition.BFSChunks{}},
		{Shards: 4, Partitioner: partition.GreedyBalanced{}, Dist: dist.Options{Sharded: true, Shards: 2}},
		{Shards: 16, Partitioner: partition.BFSChunks{}}, // one node per shard, BFS order
		{Shards: 3, Partitioner: partition.BFSChunks{}, Dist: dist.Options{Sharded: true, FreeRunning: true, Partitioner: partition.BFSChunks{}}},
	} {
		e := engine.New(in, opt)
		checkAllPaths(t, fmt.Sprintf("opts=%+v", opt), e, in, p, v)
	}
}

// TestEngineCachedViewsSurviveManyProofs: a single engine serves a long
// proof stream with per-radius caches warm, never diverging from the
// reference.
func TestEngineCachedViewsSurviveManyProofs(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(21))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	v := scheme.Verifier()
	e := engine.New(in, engine.Options{Shards: 2})
	for i := 0; i < 50; i++ {
		proof := core.FlipBit(p, int64(i))
		want := core.Check(in, proof, v)
		resultsEqual(t, fmt.Sprintf("proof %d", i), e.CheckProof(proof, v), want)
	}
}

// TestEngineStreamEarlyExit: cancelling after the first rejection stops
// the stream without waiting for the rest of the graph.
func TestEngineStreamEarlyExit(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(64)) // even cycle: odd-n must reject
	v := lcp.OddNScheme().Verifier()
	e := engine.New(in, engine.Options{})
	node, found := e.CheckFirstReject(context.Background(), core.Proof{}, v)
	if !found {
		t.Fatal("odd-n on even cycle with empty proof: expected a rejection")
	}
	if !in.G.Has(node) {
		t.Fatalf("rejecting node %d not in graph", node)
	}
	// On an accepting proof, no rejection is found.
	yes := lcp.NewInstance(lcp.Cycle(9))
	p, err := lcp.OddNScheme().Prove(yes)
	if err != nil {
		t.Fatal(err)
	}
	if node, found := engine.New(yes, engine.Options{}).CheckFirstReject(context.Background(), p, v); found {
		t.Fatalf("honest proof: unexpected rejection at %d", node)
	}
}

// TestEngineStreamCancelledContext: a cancelled context closes the
// stream promptly instead of delivering all n verdicts.
func TestEngineStreamCancelledContext(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(128))
	v := lcp.OddNScheme().Verifier()
	e := engine.New(in, engine.Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	got := 0
	for range e.CheckStream(ctx, core.Proof{}, v) {
		got++
		if got == 3 {
			cancel()
		}
	}
	cancel()
	if got >= in.G.N() {
		t.Fatalf("cancelled stream still delivered all %d verdicts", got)
	}
}

// TestEngineCheckBatch matches per-proof results element-wise.
func TestEngineCheckBatch(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(21))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	v := scheme.Verifier()
	proofs := []core.Proof{p, nil, p.Truncated(1)}
	for seed := int64(0); seed < 5; seed++ {
		proofs = append(proofs, core.FlipBit(p, seed))
	}
	results := engine.New(in, engine.Options{}).CheckBatch(proofs, v)
	if len(results) != len(proofs) {
		t.Fatalf("got %d results for %d proofs", len(results), len(proofs))
	}
	for i, res := range results {
		resultsEqual(t, fmt.Sprintf("batch[%d]", i), res, core.Check(in, proofs[i], v))
	}
}

// TestEngineConcurrentChecks: many goroutines share one engine.
func TestEngineConcurrentChecks(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(33))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	v := scheme.Verifier()
	e := engine.New(in, engine.Options{Shards: 2})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			proof := p
			if i%2 == 1 {
				proof = core.FlipBit(p, int64(i))
			}
			want := core.Check(in, proof, v)
			var got *core.Result
			switch i % 3 {
			case 0:
				got = e.CheckProof(proof, v)
			case 1:
				var err error
				got, err = e.CheckDistributed(proof, v)
				if err != nil {
					errs <- err
					return
				}
			default:
				got = &core.Result{Outputs: map[int]bool{}}
				for verdict := range e.CheckStream(context.Background(), proof, v) {
					got.Outputs[verdict.Node] = verdict.Accept
				}
			}
			if !reflect.DeepEqual(got.Outputs, want.Outputs) {
				errs <- fmt.Errorf("goroutine %d: outputs diverge", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEngineInvalidate: caches rebuild after invalidation and verdicts
// stay correct.
func TestEngineInvalidate(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(11))
	scheme := lcp.OddNScheme()
	p, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	v := scheme.Verifier()
	e := engine.New(in, engine.Options{Shards: 2})
	want := core.Check(in, p, v)
	resultsEqual(t, "warm", e.CheckProof(p, v), want)
	e.InvalidateRadius(v.Radius())
	resultsEqual(t, "after radius invalidate", e.CheckProof(p, v), want)
	if _, err := e.CheckDistributed(p, v); err != nil {
		t.Fatal(err)
	}
	e.Invalidate()
	resultsEqual(t, "after full invalidate", e.CheckProof(p, v), want)
	dres, err := e.CheckDistributed(p, v)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "dist after full invalidate", dres, want)
}

// TestEngineMultipleRadiiShareInstance: verifiers with different
// horizons get per-radius caches that do not interfere.
func TestEngineMultipleRadiiShareInstance(t *testing.T) {
	in := lcp.NewInstance(lcp.Grid(4, 5))
	p := core.RandomProof(in, 4, 1)
	e := engine.New(in, engine.Options{Shards: 3})
	for _, r := range []int{0, 2, 1, 2, 0} {
		v := core.VerifierFunc{R: r, F: func(w *core.View) bool {
			return w.Radius == r && len(w.Dist) == w.G.N()
		}}
		resultsEqual(t, fmt.Sprintf("radius %d", r), e.CheckProof(p, v), core.Check(in, p, v))
		dres, err := e.CheckDistributed(p, v)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("dist radius %d", r), dres, core.Check(in, p, v))
	}
}

// TestEngineEmptyGraph: degenerate instance serves empty results.
func TestEngineEmptyGraph(t *testing.T) {
	e := engine.New(lcp.NewInstance(lcp.NewBuilder().Graph()), engine.Options{Shards: 4})
	v := lcp.BipartiteScheme().Verifier()
	if res := e.CheckProof(core.Proof{}, v); len(res.Outputs) != 0 || !res.Accepted() {
		t.Errorf("empty graph CheckProof: %v", res)
	}
	res, err := e.CheckDistributed(core.Proof{}, v)
	if err != nil || len(res.Outputs) != 0 {
		t.Errorf("empty graph CheckDistributed: %v, %v", res, err)
	}
	for range e.CheckStream(context.Background(), core.Proof{}, v) {
		t.Error("empty graph stream delivered a verdict")
	}
}

// TestEngineCheckProofRepanicsOnCallerGoroutine: a verifier panic in a
// pool worker surfaces as a panic of CheckProof itself (recoverable by
// the caller), not a process-killing panic in a bare goroutine.
func TestEngineCheckProofRepanicsOnCallerGoroutine(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(16))
	v := core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		if w.Center == 7 {
			panic("node 7 misbehaves")
		}
		return true
	}}
	for _, workers := range []int{1, 4} {
		e := engine.New(in, engine.Options{Workers: workers})
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d: want verifier panic to reach the caller", workers)
				}
			}()
			e.CheckProof(core.Proof{}, v)
		}()
	}
}

// TestEngineFlatProofBallRestriction: the cached-view paths share one
// flat proof table for the whole instance across every node's view; a
// verifier probing a node outside its radius-r ball must still see ε,
// exactly as the map-restricted reference views guarantee. A leak makes
// every node reject below, so any divergence from core.Check flags it.
func TestEngineFlatProofBallRestriction(t *testing.T) {
	in := lcp.NewInstance(lcp.Path(9))
	p := core.RandomProof(in, 3, 1) // every node carries 3 proof bits
	v := core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		// Node 9 is outside the radius-1 ball of nodes 1..7: they must
		// see ε for it even though the full-instance table has its bits.
		return w.ProofOf(9).Len() == 0
	}}
	want := core.Check(in, p, v)
	if len(want.Rejectors()) == 0 || want.Accepted() {
		t.Fatal("setup: expected nodes 8 and 9 to reject")
	}
	e := engine.New(in, engine.Options{Workers: 3})
	checkAllPaths(t, "flat-restriction", e, in, p, v)
}

// TestEngineDistributedHaloNodesNeverDecide: halo-only nodes of a
// shard's sub-instance see balls clipped at the halo boundary; they
// must carry messages without ever running the verifier, or a
// structure-asserting verifier would panic on a view no real node of
// the full graph sees and CheckDistributed would error where core.Check
// accepts.
func TestEngineDistributedHaloNodesNeverDecide(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(12))
	v := core.VerifierFunc{R: 2, F: func(w *core.View) bool {
		if len(w.Dist) != 5 { // every radius-2 ball of C12 has 5 nodes
			panic(fmt.Sprintf("clipped ball of %d nodes at %d", len(w.Dist), w.Center))
		}
		return true
	}}
	want := core.Check(in, core.Proof{}, v)
	for _, opt := range []engine.Options{
		{Shards: 3},
		{Shards: 3, Dist: dist.Options{Sharded: true, Shards: 2}},
	} {
		res, err := engine.New(in, opt).CheckDistributed(core.Proof{}, v)
		if err != nil {
			t.Fatalf("opts=%+v: halo node ran the verifier: %v", opt, err)
		}
		resultsEqual(t, fmt.Sprintf("opts=%+v", opt), res, want)
	}
}

// TestEngineM2WrappedScheme: the §7.1 M2 translation's verifier is the
// one catalog citizen that needs the proof restriction as a value (it
// re-addresses the ball with virtual identifiers via View.BallProof),
// not just per-node ProofOf lookups. Routing it through the engine pins
// the regression where the flat-proof views left View.Proof nil and the
// wrapper silently saw an empty proof — honest M2 proofs must verify on
// every engine path exactly as they do under core.Check.
func TestEngineM2WrappedScheme(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(9)).SetNodeLabel(1, core.LabelLeader)
	m2 := ports.M2Scheme{Inner: lcp.OddNScheme()}
	p, err := m2.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	v := m2.Verifier()
	if !core.Check(in, p, v).Accepted() {
		t.Fatal("setup: honest M2 proof rejected by the reference runner")
	}
	e := engine.New(in, engine.Options{Workers: 2, Shards: 2})
	checkAllPaths(t, "m2-honest", e, in, p, v)
	checkAllPaths(t, "m2-tampered", e, in, core.FlipBit(p, 5), v)
}

// TestEngineHaloShrinksWithLocalityPartitioner: every node a shard does
// not own but must wire is a duplicated flooding carrier, so the summed
// halo sizes measure what CheckDistributed over-pays relative to one
// big runtime. On a scrambled grid the contiguous owned sets are
// scattered — nearly every owned node sits on a boundary and drags a
// radius-r ball of carriers in — while BFS-chunked owned sets are tight
// regions with thin boundaries. The verdicts must not move at all.
func TestEngineHaloShrinksWithLocalityPartitioner(t *testing.T) {
	in := lcp.NewInstance(graph.RandomPermutationIDs(lcp.Grid(16, 16), 7))
	const radius = 2
	sum := func(e *engine.Engine) int {
		sizes, err := e.HaloSizes(radius)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, s := range sizes {
			n += s
		}
		return n
	}
	contig := sum(engine.New(in, engine.Options{Shards: 4}))
	bfs := sum(engine.New(in, engine.Options{Shards: 4, Partitioner: partition.BFSChunks{}}))
	if bfs >= contig {
		t.Errorf("summed halo sizes: bfs=%d contiguous=%d — want strictly smaller", bfs, contig)
	}
	p := core.RandomProof(in, 3, 2)
	v := core.VerifierFunc{R: radius, F: func(w *core.View) bool { return w.G.N() > 6 }}
	want := core.Check(in, p, v)
	for _, opt := range []engine.Options{
		{Shards: 4},
		{Shards: 4, Partitioner: partition.BFSChunks{}},
		{Shards: 4, Partitioner: partition.GreedyBalanced{}},
	} {
		got, err := engine.New(in, opt).CheckDistributed(p, v)
		if err != nil {
			t.Fatalf("opts=%+v: %v", opt, err)
		}
		resultsEqual(t, fmt.Sprintf("halo opts=%+v", opt), got, want)
	}
}

// TestEngineInvalidPartitioner: a malformed custom assignment surfaces
// as a CheckDistributed error, and the cached error persists like any
// other failed shard build.
func TestEngineInvalidPartitioner(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(8))
	e := engine.New(in, engine.Options{Shards: 3, Partitioner: truncatedPartitioner{}})
	if _, err := e.CheckDistributed(core.Proof{}, lcp.OddNScheme().Verifier()); err == nil {
		t.Error("invalid assignment accepted")
	}
}

type truncatedPartitioner struct{}

func (truncatedPartitioner) Name() string                 { return "truncated" }
func (truncatedPartitioner) Assign(*lcp.Graph, int) []int { return []int{0} }

// TestEngineDirectedInstances: halo sharding follows undirected
// reachability on directed graphs.
func TestEngineDirectedInstances(t *testing.T) {
	b := lcp.NewDirectedBuilder()
	for i := 1; i < 10; i++ {
		b.AddEdge(i, i+1)
	}
	b.AddEdge(10, 1).AddEdge(4, 1).AddEdge(7, 2)
	in := core.NewInstance(b.Graph()).SetNodeLabel(1, core.LabelS).SetNodeLabel(9, core.LabelT)
	p := core.RandomProof(in, 4, 11)
	v := core.VerifierFunc{R: 2, F: func(w *core.View) bool {
		// Depends on arcs, labels and proofs in the view, so any halo
		// clipping bug flips verdicts somewhere.
		return w.G.M()%2 == 0 || w.ProofOf(w.Center).Len() > 0 || w.Label(w.Center) != ""
	}}
	e := engine.New(in, engine.Options{Shards: 3})
	checkAllPaths(t, "directed", e, in, p, v)
}
