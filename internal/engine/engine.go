package engine

import (
	"context"
	"runtime"
	"slices"
	"sync"

	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/graph"
	"lcp/internal/obs"
	"lcp/internal/partition"
)

// Options configures an Engine. The zero value serves with GOMAXPROCS
// workers and a single message-passing runtime.
type Options struct {
	// Workers bounds the worker pool of the shared-memory paths
	// (CheckProof, CheckBatch, CheckStream) and of skeleton
	// construction. 0 means GOMAXPROCS.
	Workers int
	// Shards is the number of dist runtimes the message-passing path
	// spans. Each shard owns a group of nodes chosen by Partitioner and
	// runs a reusable dist.Network over the group's radius-r halo.
	// 0 means 1.
	Shards int
	// Partitioner chooses which nodes each distributed shard owns. nil
	// means partition.Contiguous{} — near-equal ranges of the ascending
	// identifier order. A locality-aware partitioner (partition.
	// BFSChunks, partition.GreedyBalanced) keeps each shard's owned set
	// topologically tight, so its radius-r halo adds fewer carrier
	// nodes and the duplicated flooding work across shards shrinks.
	// Verdicts are identical under every assignment. This is the halo
	// cut; the scheduler layout inside each shard's runtime has its own
	// partitioner knob at Dist.Partitioner.
	Partitioner partition.Partitioner
	// Dist tunes the scheduler of every sharded runtime.
	Dist dist.Options
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return 1
}

// partitioner resolves the halo partitioner: the configured one, or
// the contiguous id-range default.
func (o Options) partitioner() partition.Partitioner {
	if o.Partitioner != nil {
		return o.Partitioner
	}
	return partition.Contiguous{}
}

// Verdict is one node's decision, as streamed by CheckStream.
type Verdict struct {
	Node   int
	Accept bool
}

// Engine is a long-lived verification service for a single instance.
// It is safe for concurrent use; the first check at a given radius
// builds that radius's caches, later checks reuse them.
type Engine struct {
	in  *core.Instance
	opt Options

	// Caches are per radius, each behind its own build guard so a cold
	// build at one radius never blocks warm checks at another (or a
	// second caller at the same radius from doubling the work).
	mu    sync.Mutex
	views map[int]*viewCache // radius -> proof-free skeletons, aligned with in.G.Nodes()
	nets  map[int]*netCache  // radius -> sharded message-passing runtimes

	// flats recycles the dense proof tables of the cached-view paths:
	// one table per in-flight check, loaded in O(n) from the map-backed
	// proof and then shared read-only by every node's view. Pooling them
	// keeps the per-check allocation at one Load instead of one table.
	flats sync.Pool // *core.FlatProof aligned with in.G

	// columns recycles the node-major batch tables of the column-wise
	// path (CheckBatchColumns), one table per in-flight batch.
	columns sync.Pool // *core.ProofColumns aligned with in.G
}

type viewCache struct {
	once  sync.Once
	views []*core.View

	// balls is the per-node ball membership as sorted graph indices,
	// derived lazily from the skeletons' distance maps for the
	// column-wise batch path (it compares proof columns over exactly
	// the entries a verifier can observe). Built once per radius.
	ballsOnce sync.Once
	balls     [][]int32
}

// ballIndexes returns, for each node index, the graph indices of its
// radius-r ball members in ascending order. Must be called after the
// cache's views are built. Membership is re-walked with the pooled
// ball scratch (one reused id buffer, no per-node map iteration); the
// result is identical to the skeletons' distance maps because both
// come from the same BFS.
func (c *viewCache) ballIndexes(g *graph.Graph) [][]int32 {
	c.ballsOnce.Do(func() {
		balls := make([][]int32, len(c.views))
		var ids []int
		for i, w := range c.views {
			ids = g.AppendBallIDs(ids[:0], w.Center, w.Radius)
			bi := make([]int32, len(ids))
			for j, v := range ids {
				bi[j] = int32(g.Index(v))
			}
			slices.Sort(bi)
			balls[i] = bi
		}
		c.balls = balls
	})
	return c.balls
}

type netCache struct {
	once sync.Once
	sn   *shardedNets
	err  error
}

// New builds an engine for the instance. The instance (graph, labels,
// weights, globals) must not be mutated while the engine serves; if it
// is, call Invalidate to drop the stale caches.
func New(in *core.Instance, opt Options) *Engine {
	if in == nil || in.G == nil {
		panic("engine: nil instance")
	}
	return &Engine{
		in:    in,
		opt:   opt,
		views: make(map[int]*viewCache),
		nets:  make(map[int]*netCache),
	}
}

// Instance returns the instance the engine serves.
func (e *Engine) Instance() *core.Instance { return e.in }

// Invalidate drops every cached view skeleton and sharded runtime.
// Checks already in flight keep using the caches they resolved (a
// dropped sharded runtime finishes its current runs and is then
// garbage collected); new checks rebuild.
func (e *Engine) Invalidate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.views = make(map[int]*viewCache)
	e.nets = make(map[int]*netCache)
}

// InvalidateRadius drops the caches of a single radius, leaving other
// radii warm.
func (e *Engine) InvalidateRadius(radius int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.views, radius)
	delete(e.nets, radius)
}

// viewsFor returns the per-node skeletons for the radius, building and
// caching them on first use. Skeletons are core.Views with a nil Proof;
// checks shallow-copy them and attach the check's flat proof table, so
// the maps inside are shared read-only across all concurrent checks and
// no per-ball proof restriction is ever materialized.
//
// tl, when non-nil, receives the time spent in this call as the
// "engine.views" stage — near zero on a warm cache, the whole skeleton
// build on a miss (or the wait for a concurrent builder).
func (e *Engine) viewsFor(radius int, tl *obs.Timeline) []*core.View {
	return e.cacheFor(radius, tl).views
}

// cacheFor is viewsFor returning the whole per-radius cache, for paths
// that also need the derived ball-index lists (CheckBatchColumns).
func (e *Engine) cacheFor(radius int, tl *obs.Timeline) *viewCache {
	e.mu.Lock()
	c, ok := e.views[radius]
	if !ok {
		c = &viewCache{}
		e.views[radius] = c
	}
	e.mu.Unlock()
	stop := tl.Start("engine.views")
	built := false
	c.once.Do(func() {
		built = true
		nodes := e.in.G.Nodes()
		vs := make([]*core.View, len(nodes))
		forEachRange(len(nodes), e.opt.workers(), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				w := core.BuildView(e.in, nil, nodes[i], radius)
				w.Proof = nil
				vs[i] = w
			}
		})
		c.views = vs
		engineSkeletons.Add(float64(len(nodes)))
	})
	stop()
	if built {
		engineViewMisses.Inc()
	} else {
		engineViewHits.Inc()
	}
	return c
}

// flatFor draws a pooled dense proof table and loads the proof into it.
// The table is owned by one check; return it with releaseFlat once every
// view that references it has been verified.
func (e *Engine) flatFor(p core.Proof) *core.FlatProof {
	//lint:ignore poolput ownership transfer: the check that called flatFor returns the table via releaseFlat once its views are verified
	fp, ok := e.flats.Get().(*core.FlatProof)
	if !ok {
		fp = core.NewFlatProof(e.in.G)
	}
	fp.Load(p)
	return fp
}

func (e *Engine) releaseFlat(fp *core.FlatProof) { e.flats.Put(fp) }

// verifyOnSkeleton runs the verifier on a cached skeleton against the
// check's shared flat proof table. The skeleton is shallow-copied; no
// per-ball proof map is built — View.ProofOf restricts the table to the
// ball through the skeleton's distance map.
func verifyOnSkeleton(skel *core.View, fp *core.FlatProof, v core.Verifier) bool {
	w := *skel
	w.Flat = fp
	return v.Verify(&w)
}

// CheckProof verifies one proof on the cached views, sharding the node
// set across the worker pool. Verdict-for-verdict identical to
// core.Check(in, p, v), at a fraction of the per-proof cost once the
// radius is warm.
func (e *Engine) CheckProof(p core.Proof, v core.Verifier) *core.Result {
	return e.checkProof(nil, p, v)
}

// CheckProofCtx is CheckProof with the context conventions of the other
// Ctx entry points: a context already done fails fast with ctx.Err()
// (a single proof remains the unit of work — once started, the check
// runs to completion), and a context-carried obs.Timeline receives the
// per-stage breakdown ("engine.views", "engine.verify").
func (e *Engine) CheckProofCtx(ctx context.Context, p core.Proof, v core.Verifier) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.checkProof(obs.TimelineFrom(ctx), p, v), nil
}

func (e *Engine) checkProof(tl *obs.Timeline, p core.Proof, v core.Verifier) *core.Result {
	views := e.viewsFor(v.Radius(), tl)
	nodes := e.in.G.Nodes()
	outs := make([]bool, len(nodes))
	fp := e.flatFor(p)
	defer e.releaseFlat(fp)
	stop := tl.Start("engine.verify")
	forEachRange(len(nodes), e.opt.workers(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outs[i] = verifyOnSkeleton(views[i], fp, v)
		}
	})
	stop()
	res := &core.Result{Outputs: make(map[int]bool, len(nodes))}
	for i, id := range nodes {
		res.Outputs[id] = outs[i]
	}
	return res
}

// CheckBatch verifies many proofs against the same cached views,
// returning one result per proof in order.
func (e *Engine) CheckBatch(proofs []core.Proof, v core.Verifier) []*core.Result {
	//lint:ignore ctxflow ctx-less CheckBatch is the documented uncancellable entry point; CheckBatchCtx is the threaded variant
	out, _ := e.CheckBatchCtx(context.Background(), proofs, v)
	return out
}

// CheckBatchCtx is CheckBatch with context cancellation: the batch
// aborts between proofs once the context is done, returning the results
// completed so far together with ctx.Err(). A single proof is the unit
// of work — an individual CheckProof runs to completion — so a cancelled
// HTTP request stops costing at the next proof boundary instead of
// after the whole batch.
func (e *Engine) CheckBatchCtx(ctx context.Context, proofs []core.Proof, v core.Verifier) ([]*core.Result, error) {
	tl := obs.TimelineFrom(ctx)
	if len(proofs) > 0 {
		e.viewsFor(v.Radius(), tl) // warm once, outside the per-proof loop
	}
	out := make([]*core.Result, 0, len(proofs))
	for _, p := range proofs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out = append(out, e.checkProof(tl, p, v))
	}
	return out, nil
}

// CheckStream verifies the proof and streams each node's verdict as it
// is decided. The channel closes when every node has reported or the
// context is cancelled — cancel on the first rejected Verdict to stop
// paying for the rest of the graph. Verdict order is whatever the
// worker pool produces; the Node field identifies the decider.
//
// Unlike CheckProof, stream workers cannot re-raise a verifier panic on
// the consumer's goroutine; an untrusted verifier should be wrapped in
// its own recover before streaming (internal/serve does this).
func (e *Engine) CheckStream(ctx context.Context, p core.Proof, v core.Verifier) <-chan Verdict {
	out := make(chan Verdict)
	go func() {
		defer close(out)
		views := e.viewsFor(v.Radius(), obs.TimelineFrom(ctx))
		nodes := e.in.G.Nodes()
		fp := e.flatFor(p)
		defer e.releaseFlat(fp)
		var wg sync.WaitGroup
		for _, r := range partition.SplitRanges(len(nodes), e.opt.workers()) {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					verdict := Verdict{Node: nodes[i], Accept: verifyOnSkeleton(views[i], fp, v)}
					select {
					case out <- verdict:
					case <-ctx.Done():
						return
					}
				}
			}(r[0], r[1])
		}
		wg.Wait()
	}()
	return out
}

// CheckFirstReject streams internally and returns the first rejecting
// node, cancelling the remaining work as soon as it is found. ok
// reports whether a rejection exists; on fully accepting proofs it is
// false and the whole graph was checked.
func (e *Engine) CheckFirstReject(ctx context.Context, p core.Proof, v core.Verifier) (node int, ok bool) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for verdict := range e.CheckStream(ctx, p, v) {
		if !verdict.Accept {
			return verdict.Node, true
		}
	}
	return 0, false
}

// forEachRange runs fn over the range partition on one goroutine per
// part and waits for all of them. A panic inside a worker (a panicking
// verifier, say) is re-raised on the caller's goroutine after the join,
// mirroring what a sequential core.Check would do — so callers (and
// net/http handlers above them) can recover it instead of the process
// dying in a bare goroutine.
func forEachRange(n, parts int, fn func(lo, hi int)) {
	ranges := partition.SplitRanges(n, parts)
	if len(ranges) == 1 {
		fn(ranges[0][0], ranges[0][1])
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for _, r := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicked = p })
				}
			}()
			fn(lo, hi)
		}(r[0], r[1])
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
