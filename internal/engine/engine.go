// Package engine is the long-lived, amortized verification service for
// locally checkable proofs: one Engine per instance, many proofs.
//
// The one-shot runners (core.Check, dist.Check) pay for view
// construction on every call — a BFS ball, an induced subgraph, and the
// label restriction per node. But an LCP workload verifies the same
// graph against many proofs (tampering sweeps, adversary searches,
// Table-1 regeneration, a verification service's request stream), and
// the radius-r view (G[v,r], v) depends only on the graph and the input
// labelling, never on the proof. The Engine therefore precomputes one
// proof-free view skeleton per node per radius, caches it, and serves
// each CheckProof by swapping the proof restriction into a shallow copy
// of the skeleton. The cache is keyed and invalidated per radius, so
// verifiers with different horizons share the instance without
// interfering.
//
// Three serving shapes are exposed:
//
//   - CheckProof / CheckBatch: sharded over a bounded worker pool
//     (contiguous node ranges, the shared-memory path);
//   - CheckStream: verdicts stream over a channel as each node decides,
//     with early exit on context cancellation — callers stop paying the
//     moment the first rejection arrives;
//   - CheckDistributed: the message-passing path, sharded across
//     multiple reusable dist.Network runtimes (each shard owns a node
//     range and floods inside its radius-r halo).
//
// Verdicts are identical to core.Check on every path; the property
// tests sweep the whole catalog, including tampered and truncated
// proofs, to assert it.
package engine

import (
	"context"
	"runtime"
	"sync"

	"lcp/internal/core"
	"lcp/internal/dist"
)

// Options configures an Engine. The zero value serves with GOMAXPROCS
// workers and a single message-passing runtime.
type Options struct {
	// Workers bounds the worker pool of the shared-memory paths
	// (CheckProof, CheckBatch, CheckStream) and of skeleton
	// construction. 0 means GOMAXPROCS.
	Workers int
	// Shards is the number of dist runtimes the message-passing path
	// spans. Each shard owns a contiguous node range and runs a
	// reusable dist.Network over the range's radius-r halo. 0 means 1.
	Shards int
	// Dist tunes the scheduler of every sharded runtime.
	Dist dist.Options
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return 1
}

// Verdict is one node's decision, as streamed by CheckStream.
type Verdict struct {
	Node   int
	Accept bool
}

// Engine is a long-lived verification service for a single instance.
// It is safe for concurrent use; the first check at a given radius
// builds that radius's caches, later checks reuse them.
type Engine struct {
	in  *core.Instance
	opt Options

	// Caches are per radius, each behind its own build guard so a cold
	// build at one radius never blocks warm checks at another (or a
	// second caller at the same radius from doubling the work).
	mu    sync.Mutex
	views map[int]*viewCache // radius -> proof-free skeletons, aligned with in.G.Nodes()
	nets  map[int]*netCache  // radius -> sharded message-passing runtimes
}

type viewCache struct {
	once  sync.Once
	views []*core.View
}

type netCache struct {
	once sync.Once
	sn   *shardedNets
	err  error
}

// New builds an engine for the instance. The instance (graph, labels,
// weights, globals) must not be mutated while the engine serves; if it
// is, call Invalidate to drop the stale caches.
func New(in *core.Instance, opt Options) *Engine {
	if in == nil || in.G == nil {
		panic("engine: nil instance")
	}
	return &Engine{
		in:    in,
		opt:   opt,
		views: make(map[int]*viewCache),
		nets:  make(map[int]*netCache),
	}
}

// Instance returns the instance the engine serves.
func (e *Engine) Instance() *core.Instance { return e.in }

// Invalidate drops every cached view skeleton and sharded runtime.
// Checks already in flight keep using the caches they resolved (a
// dropped sharded runtime finishes its current runs and is then
// garbage collected); new checks rebuild.
func (e *Engine) Invalidate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.views = make(map[int]*viewCache)
	e.nets = make(map[int]*netCache)
}

// InvalidateRadius drops the caches of a single radius, leaving other
// radii warm.
func (e *Engine) InvalidateRadius(radius int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.views, radius)
	delete(e.nets, radius)
}

// viewsFor returns the per-node skeletons for the radius, building and
// caching them on first use. Skeletons are core.Views with a nil Proof;
// checks shallow-copy them and splice the proof restriction in, so the
// maps inside are shared read-only across all concurrent checks.
func (e *Engine) viewsFor(radius int) []*core.View {
	e.mu.Lock()
	c, ok := e.views[radius]
	if !ok {
		c = &viewCache{}
		e.views[radius] = c
	}
	e.mu.Unlock()
	c.once.Do(func() {
		nodes := e.in.G.Nodes()
		vs := make([]*core.View, len(nodes))
		forEachRange(len(nodes), e.opt.workers(), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				w := core.BuildView(e.in, nil, nodes[i], radius)
				w.Proof = nil
				vs[i] = w
			}
		})
		c.views = vs
	})
	return c.views
}

// verifyOnSkeleton runs the verifier on a cached skeleton with the
// proof restriction spliced in.
func verifyOnSkeleton(skel *core.View, p core.Proof, v core.Verifier) bool {
	w := *skel
	ball := skel.G.Nodes()
	w.Proof = make(core.Proof, len(ball))
	for _, u := range ball {
		if s, ok := p[u]; ok {
			w.Proof[u] = s
		}
	}
	return v.Verify(&w)
}

// CheckProof verifies one proof on the cached views, sharding the node
// set across the worker pool. Verdict-for-verdict identical to
// core.Check(in, p, v), at a fraction of the per-proof cost once the
// radius is warm.
func (e *Engine) CheckProof(p core.Proof, v core.Verifier) *core.Result {
	views := e.viewsFor(v.Radius())
	nodes := e.in.G.Nodes()
	outs := make([]bool, len(nodes))
	forEachRange(len(nodes), e.opt.workers(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outs[i] = verifyOnSkeleton(views[i], p, v)
		}
	})
	res := &core.Result{Outputs: make(map[int]bool, len(nodes))}
	for i, id := range nodes {
		res.Outputs[id] = outs[i]
	}
	return res
}

// CheckBatch verifies many proofs against the same cached views,
// returning one result per proof in order.
func (e *Engine) CheckBatch(proofs []core.Proof, v core.Verifier) []*core.Result {
	e.viewsFor(v.Radius()) // warm once, outside the per-proof loop
	out := make([]*core.Result, len(proofs))
	for i, p := range proofs {
		out[i] = e.CheckProof(p, v)
	}
	return out
}

// CheckStream verifies the proof and streams each node's verdict as it
// is decided. The channel closes when every node has reported or the
// context is cancelled — cancel on the first rejected Verdict to stop
// paying for the rest of the graph. Verdict order is whatever the
// worker pool produces; the Node field identifies the decider.
//
// Unlike CheckProof, stream workers cannot re-raise a verifier panic on
// the consumer's goroutine; an untrusted verifier should be wrapped in
// its own recover before streaming (internal/serve does this).
func (e *Engine) CheckStream(ctx context.Context, p core.Proof, v core.Verifier) <-chan Verdict {
	out := make(chan Verdict)
	go func() {
		defer close(out)
		views := e.viewsFor(v.Radius())
		nodes := e.in.G.Nodes()
		var wg sync.WaitGroup
		for _, r := range splitRange(len(nodes), e.opt.workers()) {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					verdict := Verdict{Node: nodes[i], Accept: verifyOnSkeleton(views[i], p, v)}
					select {
					case out <- verdict:
					case <-ctx.Done():
						return
					}
				}
			}(r[0], r[1])
		}
		wg.Wait()
	}()
	return out
}

// CheckFirstReject streams internally and returns the first rejecting
// node, cancelling the remaining work as soon as it is found. ok
// reports whether a rejection exists; on fully accepting proofs it is
// false and the whole graph was checked.
func (e *Engine) CheckFirstReject(ctx context.Context, p core.Proof, v core.Verifier) (node int, ok bool) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for verdict := range e.CheckStream(ctx, p, v) {
		if !verdict.Accept {
			return verdict.Node, true
		}
	}
	return 0, false
}

// splitRange partitions n items into at most parts contiguous [lo, hi)
// ranges of near-equal size.
func splitRange(n, parts int) [][2]int {
	if parts > n {
		parts = n
	}
	if parts <= 0 {
		return nil
	}
	out := make([][2]int, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + (n-lo)/(parts-i)
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// forEachRange runs fn over the range partition on one goroutine per
// part and waits for all of them. A panic inside a worker (a panicking
// verifier, say) is re-raised on the caller's goroutine after the join,
// mirroring what a sequential core.Check would do — so callers (and
// net/http handlers above them) can recover it instead of the process
// dying in a bare goroutine.
func forEachRange(n, parts int, fn func(lo, hi int)) {
	ranges := splitRange(n, parts)
	if len(ranges) == 1 {
		fn(ranges[0][0], ranges[0][1])
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for _, r := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicked = p })
				}
			}()
			fn(lo, hi)
		}(r[0], r[1])
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
