// Package engine is the long-lived, amortized verification service for
// locally checkable proofs: one Engine per instance, many proofs.
//
// The one-shot runners (core.Check, dist.Check) pay for view
// construction on every call — a BFS ball, an induced subgraph, and the
// label restriction per node. But an LCP workload verifies the same
// graph against many proofs (tampering sweeps, adversary searches,
// Table-1 regeneration, a verification service's request stream), and
// the radius-r view (G[v,r], v) of §2.1 depends only on the graph and
// the input labelling, never on the proof P. The Engine therefore
// precomputes one proof-free view skeleton per node per radius, caches
// it, and serves each check from the cache. The cache is keyed and
// invalidated per radius, so verifiers with different horizons share
// the instance without interfering.
//
// Proofs take the flat path on the cached routes: instead of restricting
// the map-backed core.Proof into a fresh per-ball map for every node of
// every proof, a check loads the proof once into a pooled core.FlatProof
// — a node-indexed slice aligned with the instance's node order — and
// every node's shallow-copied skeleton shares it read-only, with ball
// restriction enforced by View.ProofOf against the skeleton's distance
// map. The per-proof cost is one O(n) load plus the verifier's own work.
//
// Four serving shapes are exposed:
//
//   - CheckProof / CheckBatch: sharded over a bounded worker pool
//     (contiguous node ranges, the shared-memory path);
//   - CheckBatchColumns: the column-wise batch path — the k proofs of
//     one batch load into a node-major core.ProofColumns table and a
//     single walk over the cached skeletons evaluates all k columns per
//     node, copying verdicts between columns whose ball-restrictions
//     agree (sound by the locality contract) instead of re-running the
//     verifier;
//   - CheckStream: verdicts stream over a channel as each node decides,
//     with early exit on context cancellation — callers stop paying the
//     moment the first rejection arrives;
//   - CheckDistributed: the message-passing path, sharded across
//     multiple reusable dist.Network runtimes. Each shard owns a
//     contiguous node range and floods inside the range's radius-r halo
//     (every node within distance r of an owned node), so its owned
//     views are exactly what the full graph would deliver. The shards
//     of one check always flood concurrently, and because dist.Network
//     draws wirings from a pool instead of serializing on a mutex,
//     concurrent checks of the same instance overlap too. Each
//     underlying runtime can itself run goroutine-per-node or sharded
//     (Options.Dist.Sharded).
//
// Verdicts are identical to core.Check on every path; the property
// tests sweep the whole catalog, including tampered and truncated
// proofs, to assert it.
package engine
