package engine_test

// Native fuzz target for the column-wise batch path: under random
// instance shapes, batch sizes, worker counts, and proof mutations
// (honest, bit-flipped, truncated, entry-dropped), CheckBatchColumns
// must stay verdict-for-verdict identical to the sequential reference
// core.Check — and the stop-on-reject variant must agree on every
// verdict it reports plus on each column's accept/reject summary. This
// is the property layer that keeps a data-layout-heavy path (strided
// columns, ball-restriction dedup, shared rejection flags) honest.

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"lcp/internal/core"
	"lcp/internal/engine"
	"lcp/internal/graph"
	"lcp/internal/schemes"
)

func FuzzBatchColumnsEquivalence(f *testing.F) {
	f.Add(uint8(5), uint8(3), int64(1), uint8(1))
	f.Add(uint8(0), uint8(0), int64(7), uint8(0))   // empty batch
	f.Add(uint8(0), uint8(8), int64(42), uint8(2))  // k > n on the smallest graph
	f.Add(uint8(29), uint8(1), int64(99), uint8(3)) // k = 1
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, seed int64, workersRaw uint8) {
		n := 3 + int(nRaw%30)
		k := int(kRaw % 9)
		// Everything random is drawn from one seeded source, so a corpus
		// entry reproduces exactly.
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch rng.Intn(3) {
		case 0:
			g = graph.Cycle(n)
		case 1:
			g = graph.Path(n)
		default:
			g = graph.Grid(2, (n+1)/2)
		}
		in := core.NewInstance(g)
		scheme := schemes.ParityCount{WantOdd: g.N()%2 == 1}
		honest, err := scheme.Prove(in)
		if err != nil {
			t.Fatalf("prove on %d nodes: %v", g.N(), err)
		}
		v := scheme.Verifier()
		proofs := make([]core.Proof, k)
		for j := range proofs {
			switch rng.Intn(4) {
			case 0:
				proofs[j] = honest
			case 1:
				proofs[j] = core.FlipBit(honest, rng.Int63())
			case 2:
				proofs[j] = honest.Truncated(rng.Intn(3))
			default:
				// Drop one entry (deterministically chosen: map
				// iteration order would make the target irreproducible).
				p := honest.Clone()
				ids := make([]int, 0, len(p))
				for id := range p {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				if len(ids) > 0 {
					delete(p, ids[rng.Intn(len(ids))])
				}
				proofs[j] = p
			}
		}
		eng := engine.New(in, engine.Options{Workers: 1 + int(workersRaw%4)})
		want := make([]*core.Result, k)
		for j, p := range proofs {
			want[j] = core.Check(in, p, v)
		}
		got, err := eng.CheckBatchColumnsCtx(context.Background(), proofs, v)
		if err != nil {
			t.Fatalf("CheckBatchColumnsCtx: %v", err)
		}
		if len(got) != k {
			t.Fatalf("got %d results, want %d", len(got), k)
		}
		for j := range got {
			if !reflect.DeepEqual(got[j].Outputs, want[j].Outputs) {
				t.Fatalf("proof %d: columns outputs differ from core.Check:\n got %v\nwant %v", j, got[j].Outputs, want[j].Outputs)
			}
		}
		// Stop-on-reject reports a subset of the verdicts (rejected
		// columns stop early) but every reported verdict, and every
		// column's accept/reject summary, must agree with the reference.
		stop, err := eng.CheckBatchColumnsWith(context.Background(), proofs, v, engine.ColumnsOptions{StopOnReject: true})
		if err != nil {
			t.Fatalf("CheckBatchColumnsWith(StopOnReject): %v", err)
		}
		for j := range stop {
			if stop[j].Accepted() != want[j].Accepted() {
				t.Fatalf("proof %d: stop-on-reject verdict %v, want %v", j, stop[j].Accepted(), want[j].Accepted())
			}
			for node, out := range stop[j].Outputs {
				if wantOut, ok := want[j].Outputs[node]; !ok || out != wantOut {
					t.Fatalf("proof %d node %d: stop-on-reject output %v, reference %v (present=%v)", j, node, out, wantOut, ok)
				}
			}
		}
	})
}
