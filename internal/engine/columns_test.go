package engine_test

// Tests for the column-wise batch path: concurrent batches against one
// shared Engine (the serve /check/batch fan-out, run under -race),
// degenerate batch shapes, and cancellation semantics. The catalog-wide
// equivalence lives in the checker matrix and the fuzz target; these
// pin the concurrency and edge-shape behaviour.

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"lcp/internal/core"
	"lcp/internal/engine"
	"lcp/internal/graph"
	"lcp/internal/schemes"
)

// columnsFixture is a Cycle instance with a mixed batch: honest,
// tampered, truncated, and entry-dropped proofs.
func columnsFixture(t *testing.T, n, k int) (*core.Instance, []core.Proof, core.Verifier) {
	t.Helper()
	in := core.NewInstance(graph.Cycle(n))
	scheme := schemes.ParityCount{WantOdd: n%2 == 1}
	honest, err := scheme.Prove(in)
	if err != nil {
		t.Fatal(err)
	}
	proofs := make([]core.Proof, k)
	for j := range proofs {
		switch j % 4 {
		case 0:
			proofs[j] = honest
		case 1:
			proofs[j] = core.FlipBit(honest, int64(j))
		case 2:
			proofs[j] = honest.Truncated(1)
		default:
			p := honest.Clone()
			delete(p, in.G.Nodes()[j%n])
			proofs[j] = p
		}
	}
	return in, proofs, scheme.Verifier()
}

// TestCheckBatchColumnsConcurrentStress mirrors serve's batch fan-out:
// many goroutines firing CheckBatchColumns at one shared Engine on one
// instance, full-output and stop-on-reject interleaved. Run under
// -race this pins that the pooled ProofColumns tables, the lazily built
// ball-index cache, and the shared skeletons never alias across
// concurrent batches.
func TestCheckBatchColumnsConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		iterations = 5
	)
	in, proofs, v := columnsFixture(t, 33, 12)
	want := make([]*core.Result, len(proofs))
	for j, p := range proofs {
		want[j] = core.Check(in, p, v)
	}
	eng := engine.New(in, engine.Options{Workers: 4})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				if g%2 == 0 {
					got, err := eng.CheckBatchColumnsCtx(context.Background(), proofs, v)
					if err != nil {
						errs <- err
						return
					}
					for j := range got {
						if !reflect.DeepEqual(got[j].Outputs, want[j].Outputs) {
							t.Errorf("goroutine %d iter %d proof %d: outputs diverged", g, it, j)
							return
						}
					}
				} else {
					got, err := eng.CheckBatchColumnsWith(context.Background(), proofs, v, engine.ColumnsOptions{StopOnReject: true})
					if err != nil {
						errs <- err
						return
					}
					for j := range got {
						if got[j].Accepted() != want[j].Accepted() {
							t.Errorf("goroutine %d iter %d proof %d: stop-on-reject verdict diverged", g, it, j)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent batch: %v", err)
	}
}

// TestCheckBatchColumnsShapes sweeps the degenerate batch shapes: the
// empty batch, a single column, more columns than nodes, and a batch
// where every column rejects under stop-on-reject.
func TestCheckBatchColumnsShapes(t *testing.T) {
	t.Run("empty-batch", func(t *testing.T) {
		in, _, v := columnsFixture(t, 9, 1)
		eng := engine.New(in, engine.Options{})
		for _, proofs := range [][]core.Proof{nil, {}} {
			got, err := eng.CheckBatchColumnsCtx(context.Background(), proofs, v)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Fatalf("empty batch returned %d results", len(got))
			}
		}
	})
	t.Run("single-column", func(t *testing.T) {
		in, proofs, v := columnsFixture(t, 9, 1)
		eng := engine.New(in, engine.Options{})
		got, err := eng.CheckBatchColumnsCtx(context.Background(), proofs, v)
		if err != nil {
			t.Fatal(err)
		}
		want := core.Check(in, proofs[0], v)
		if !reflect.DeepEqual(got[0].Outputs, want.Outputs) {
			t.Fatalf("k=1 outputs differ:\n got %v\nwant %v", got[0].Outputs, want.Outputs)
		}
	})
	t.Run("more-columns-than-nodes", func(t *testing.T) {
		in, proofs, v := columnsFixture(t, 5, 23)
		eng := engine.New(in, engine.Options{Workers: 3})
		got, err := eng.CheckBatchColumnsCtx(context.Background(), proofs, v)
		if err != nil {
			t.Fatal(err)
		}
		for j, p := range proofs {
			want := core.Check(in, p, v)
			if !reflect.DeepEqual(got[j].Outputs, want.Outputs) {
				t.Fatalf("k>n proof %d outputs differ", j)
			}
		}
	})
	t.Run("all-rejecting-stop-on-reject", func(t *testing.T) {
		in, proofs, v := columnsFixture(t, 9, 6)
		for j := range proofs {
			proofs[j] = core.FlipBit(proofs[j], int64(100+j))
		}
		eng := engine.New(in, engine.Options{Workers: 2})
		got, err := eng.CheckBatchColumnsWith(context.Background(), proofs, v, engine.ColumnsOptions{StopOnReject: true})
		if err != nil {
			t.Fatal(err)
		}
		for j, p := range proofs {
			want := core.Check(in, p, v)
			if want.Accepted() {
				// A flipped spanning-tree certificate must reject
				// somewhere; if not, the fixture is too weak to test.
				t.Fatalf("fixture proof %d unexpectedly accepted", j)
			}
			if got[j].Accepted() {
				t.Fatalf("proof %d accepted under stop-on-reject, reference rejects", j)
			}
			for node, out := range got[j].Outputs {
				if wantOut, ok := want.Outputs[node]; !ok || out != wantOut {
					t.Fatalf("proof %d node %d: reported %v, reference %v", j, node, out, wantOut)
				}
			}
		}
	})
	t.Run("cancelled-context", func(t *testing.T) {
		in, proofs, v := columnsFixture(t, 9, 4)
		eng := engine.New(in, engine.Options{})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		got, err := eng.CheckBatchColumnsCtx(ctx, proofs, v)
		if err == nil || got != nil {
			t.Fatalf("cancelled batch returned (%v, %v), want (nil, ctx error)", got, err)
		}
	})
}
