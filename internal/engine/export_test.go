package engine

// HaloSizes exposes the node count of every distributed shard's halo
// sub-instance (owned nodes + radius-r carriers) so tests can assert
// that locality-aware partitioning shrinks carrier duplication.
func (e *Engine) HaloSizes(radius int) ([]int, error) {
	sn, err := e.netsFor(radius, nil)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, 0, len(sn.shards))
	for _, s := range sn.shards {
		sizes = append(sizes, s.net.Instance().G.N())
	}
	return sizes, nil
}
