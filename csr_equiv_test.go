package lcp_test

import (
	"math/rand"
	"reflect"
	"testing"

	"lcp"
	"lcp/internal/graph"
)

// TestCatalogCSRBuilderEquivalence pins the scale PR's representation
// swap: for every catalogue row's yes-instance, the graph rebuilt
// through the Builder (the validated map-dedup path) and through
// graph.FromEdges on a shuffled edge list (the trusted CSR path) agree
// on the full observable surface — Nodes, Neighbors, BallAround — and
// produce identical per-node verdicts under the row's own scheme. Run
// with -race this also exercises the pooled ball scratch concurrently
// via t.Parallel.
func TestCatalogCSRBuilderEquivalence(t *testing.T) {
	for _, exp := range lcp.Catalog() {
		exp := exp
		if exp.MakeYes == nil || exp.Scheme == nil {
			continue
		}
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			n := exp.MinN + 9
			in := exp.MakeYes(n, int64(n))
			g := in.G

			// Builder path.
			bld := graph.NewBuilder(g.Kind())
			for _, v := range g.Nodes() {
				bld.AddNode(v)
			}
			for _, e := range g.Edges() {
				bld.AddEdge(e.U, e.V)
			}
			viaBuilder := bld.Graph()

			// Trusted CSR path, fed shuffled edges.
			edges := append([]graph.Edge(nil), g.Edges()...)
			rand.New(rand.NewSource(int64(n))).Shuffle(len(edges), func(i, j int) {
				edges[i], edges[j] = edges[j], edges[i]
			})
			viaCSR := graph.FromEdges(g.Kind(), g.Nodes(), edges)

			for _, h := range []*graph.Graph{viaBuilder, viaCSR} {
				if !graph.Equal(h, g) {
					t.Fatalf("%s: rebuilt graph differs", exp.ID)
				}
				if !reflect.DeepEqual(h.Nodes(), g.Nodes()) {
					t.Fatalf("%s: Nodes differ", exp.ID)
				}
				for _, v := range g.Nodes() {
					if !reflect.DeepEqual(h.Neighbors(v), g.Neighbors(v)) {
						t.Fatalf("%s: Neighbors(%d) differ", exp.ID, v)
					}
				}
				for _, v := range g.Nodes() {
					for radius := 0; radius <= 2; radius++ {
						_, wantDist := g.BallAround(v, radius)
						_, gotDist := h.BallAround(v, radius)
						if !reflect.DeepEqual(gotDist, wantDist) {
							t.Fatalf("%s: BallAround(%d, %d) differs", exp.ID, v, radius)
						}
					}
				}
			}

			// Same scheme, same proof, same verdicts on the rebuilt
			// instance: the checker cannot tell the representations apart.
			p, err := lcp.Prove(exp.Scheme, in)
			if err != nil {
				t.Fatalf("%s: prove: %v", exp.ID, err)
			}
			want := lcp.Check(in, p, exp.Scheme.Verifier())
			in2 := lcp.NewInstance(viaCSR)
			in2.NodeLabel = in.NodeLabel
			in2.EdgeLabel = in.EdgeLabel
			in2.Weights = in.Weights
			in2.Global = in.Global
			got := lcp.Check(in2, p, exp.Scheme.Verifier())
			if got.Accepted() != want.Accepted() || !reflect.DeepEqual(got.Outputs, want.Outputs) {
				t.Fatalf("%s: verdicts differ between representations", exp.ID)
			}
		})
	}
}
