package lcp

import (
	"errors"
	"testing"

	"lcp/internal/core"
)

// TestCatalogCompleteness: every Table 1 row proves and verifies its
// yes-instances across sizes, within the advertised size bound, both
// sequentially and on the distributed runtime.
func TestCatalogCompleteness(t *testing.T) {
	for _, exp := range Catalog() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			for _, n := range []int{exp.MinN, exp.MinN + 9, exp.MinN + 24} {
				in := exp.MakeYes(n, int64(n))
				p, _, err := ProveAndCheck(in, exp.Scheme)
				if err != nil {
					t.Fatalf("%s (%s) n=%d: %v", exp.ID, exp.Row, n, err)
				}
				if exp.BoundBits != nil {
					if got, want := float64(p.Size()), exp.BoundBits(in.G.N()); got > want {
						t.Errorf("%s n=%d: proof %v bits > bound %v", exp.ID, n, got, want)
					}
				}
				res, err := CheckDistributed(in, p, exp.Scheme.Verifier())
				if err != nil {
					t.Fatalf("%s n=%d: distributed: %v", exp.ID, n, err)
				}
				if !res.Accepted() {
					t.Errorf("%s n=%d: distributed run rejected at %v", exp.ID, n, res.Rejectors())
				}
			}
		})
	}
}

// TestCatalogSoundness: provers refuse no-instances and random proofs are
// rejected.
func TestCatalogSoundness(t *testing.T) {
	for _, exp := range Catalog() {
		exp := exp
		if exp.MakeNo == nil {
			continue
		}
		t.Run(exp.ID, func(t *testing.T) {
			n := exp.MinN + 9
			in := exp.MakeNo(n, 7)
			if _, err := exp.Scheme.Prove(in); err == nil {
				t.Fatalf("%s: prover produced a proof for a no-instance", exp.ID)
			} else if !errors.Is(err, ErrNotInProperty) {
				t.Logf("%s: prover error: %v", exp.ID, err)
			}
			v := exp.Scheme.Verifier()
			for _, bits := range []int{0, 4, 24} {
				for seed := int64(0); seed < 2; seed++ {
					p := core.RandomProof(in, bits, seed+int64(bits))
					if Check(in, p, v).Accepted() {
						t.Errorf("%s: random %d-bit proof accepted", exp.ID, bits)
					}
				}
			}
		})
	}
}

// TestCatalogIDsUnique guards the DESIGN.md experiment index.
func TestCatalogIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	count := 0
	for _, exp := range Catalog() {
		if seen[exp.ID] {
			t.Errorf("duplicate experiment id %s", exp.ID)
		}
		seen[exp.ID] = true
		count++
		if exp.Scheme == nil || exp.MakeYes == nil {
			t.Errorf("%s: incomplete entry", exp.ID)
		}
	}
	// 18 Table-1a rows (T1a-19 is the no-scheme fooling experiment,
	// exercised in internal/lowerbound) + 11 Table-1b rows.
	if count != 29 {
		t.Errorf("catalog has %d entries, want 29", count)
	}
}

// TestFacadeQuickstart mirrors the package documentation example.
func TestFacadeQuickstart(t *testing.T) {
	in := NewInstance(Cycle(8))
	proof, res, err := ProveAndCheck(in, BipartiteScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() || proof.Size() != 1 {
		t.Fatalf("quickstart: size=%d res=%s", proof.Size(), res)
	}
	// Odd cycle: no proof exists.
	if _, err := Prove(BipartiteScheme(), NewInstance(Cycle(9))); !errors.Is(err, ErrNotInProperty) {
		t.Fatalf("odd cycle: %v", err)
	}
}
