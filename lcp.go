// Package lcp is a complete, executable reproduction of "Locally
// Checkable Proofs" by Mika Göös and Jukka Suomela (PODC 2011).
//
// A locally checkable proof equips every node of a graph with a bit
// string such that a constant-radius distributed verifier accepts
// yes-instances everywhere, while for no-instances every possible proof
// is rejected by at least one node. The paper classifies graph properties
// by their local proof complexity — 0, Θ(1), Θ(log n), Θ(n), Θ(n²) bits
// per node — and this library implements every scheme in its Table 1,
// the LOCAL-model runtime to execute them (one goroutine per node), and
// every lower-bound construction as a runnable adversary.
//
// # Quick start
//
//	g := lcp.Cycle(8)
//	in := lcp.NewInstance(g)
//	proof, res, err := lcp.ProveAndCheck(in, lcp.BipartiteScheme())
//	// proof assigns 1 bit per node; res.Accepted() == true
//
// Tamper with the proof, or hand the verifier an odd cycle, and some node
// raises the alarm. See the examples/ directory for full programs and
// cmd/lcpbench for the Table 1 regeneration harness.
package lcp

import (
	"context"
	"fmt"

	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/engine"
	"lcp/internal/graph"
	"lcp/internal/partition"
	"lcp/internal/schemes"
)

// Re-exported core types. Proofs, views and verifiers are exactly the
// objects of §2 of the paper.
type (
	// Graph is an immutable simple graph with positive integer
	// identifiers (V ⊆ {1..poly(n)}).
	Graph = graph.Graph
	// Builder accumulates a Graph.
	Builder = graph.Builder
	// Edge is a (normalized) graph edge.
	Edge = graph.Edge
	// Instance is a graph plus input labels (distinguished nodes,
	// solution marks, weights, global constants).
	Instance = core.Instance
	// Proof maps each node to a bit string; Size() is bits per node.
	Proof = core.Proof
	// View is the radius-r neighbourhood a verifier sees.
	View = core.View
	// Verifier is a constant-radius local verifier.
	Verifier = core.Verifier
	// VerifierFunc adapts a function to Verifier.
	VerifierFunc = core.VerifierFunc
	// Scheme is a proof labelling scheme (prover + local verifier).
	Scheme = core.Scheme
	// Result collects the per-node outputs of a verifier run.
	Result = core.Result
	// Global is input known to every node (k, W, …).
	Global = core.Global
)

// Node input labels.
const (
	// LabelS marks the distinguished node s of reachability problems.
	LabelS = core.LabelS
	// LabelT marks the distinguished node t.
	LabelT = core.LabelT
	// LabelLeader marks the elected leader.
	LabelLeader = core.LabelLeader
)

// ErrNotInProperty is returned by provers on no-instances.
var ErrNotInProperty = core.ErrNotInProperty

// Graph construction.

// NewBuilder returns an undirected-graph builder.
func NewBuilder() *Builder { return graph.NewBuilder(graph.Undirected) }

// NewDirectedBuilder returns a directed-graph builder.
func NewDirectedBuilder() *Builder { return graph.NewBuilder(graph.Directed) }

// Generators (re-exported).
var (
	Path              = graph.Path
	Cycle             = graph.Cycle
	Complete          = graph.Complete
	CompleteBipartite = graph.CompleteBipartite
	Star              = graph.Star
	Wheel             = graph.Wheel
	Grid              = graph.Grid
	Hypercube         = graph.Hypercube
	Petersen          = graph.Petersen
	RandomTree        = graph.RandomTree
	RandomGNP         = graph.RandomGNP
	RandomConnected   = graph.RandomConnected
	RandomBipartite   = graph.RandomBipartite
	PowerLaw          = graph.PowerLaw
	RandomRegular     = graph.RandomRegular
	RoadNetwork       = graph.RoadNetwork
	LineGraphOf       = graph.LineGraphOf
	DisjointUnion     = graph.DisjointUnion
	NormEdge          = graph.NormEdge
)

// NewInstance wraps a graph as an unlabelled instance.
func NewInstance(g *Graph) *Instance { return core.NewInstance(g) }

// Prove runs a scheme's prover.
func Prove(s Scheme, in *Instance) (Proof, error) { return s.Prove(in) }

// Check runs the verifier sequentially on every node, through the
// façade's core backend.
//
// Deprecated: use NewChecker with WithBackend(BackendCore). The façade
// adds context cancellation, batching, streaming, and the unified
// Report; this wrapper survives so existing callers keep compiling.
func Check(in *Instance, p Proof, v Verifier) *Result {
	c, err := NewChecker(in, WithVerifier(v), WithBackend(BackendCore))
	if err != nil {
		panic(fmt.Sprintf("lcp.Check: %v", err))
	}
	//lint:ignore ctxflow deprecated ctx-less wrapper kept for compatibility; new callers use Checker.Check with their own ctx
	rep, err := c.Check(context.Background(), p)
	if err != nil {
		panic(fmt.Sprintf("lcp.Check: %v", err))
	}
	return rep.Result()
}

// CheckDistributed runs the verifier on the goroutine-per-node LOCAL
// runtime: each node collects its radius-r view by flooding and decides.
//
// Deprecated: use NewChecker with WithBackend(BackendDist).
func CheckDistributed(in *Instance, p Proof, v Verifier) (*Result, error) {
	return CheckDistributedWith(in, p, v, DistOptions{})
}

// DistOptions tunes the message-passing runtime's scheduler: sharded
// execution (nodes batched onto O(GOMAXPROCS) shared goroutines with
// direct same-shard delivery), the node→shard partitioner, round
// synchronization (lockstep barrier vs free-running α-synchronization),
// decision fan-out, and port buffering.
type DistOptions = dist.Options

// Partitioner computes a node→shard assignment for the sharded
// schedulers: the dist runtime's shard layout (DistOptions.Partitioner)
// and the engine's distributed halo cut (EngineOptions.Partitioner).
// Cross-shard edges are what sharded execution pays for — channels,
// per-round message traffic, duplicated halo carriers — so a
// partitioner that follows graph topology instead of identifier order
// cuts the simulation's real cost without moving a single verdict.
type Partitioner = partition.Partitioner

// ContiguousPartitioner assigns near-equal contiguous identifier ranges
// — the zero-configuration default everywhere, ideal when identifiers
// happen to follow topology.
func ContiguousPartitioner() Partitioner { return partition.Contiguous{} }

// BFSChunksPartitioner chunks a breadth-first traversal order, so each
// shard is a topologically tight region regardless of identifier
// assignment. On a scrambled 32×32 grid with 8 shards it cuts 81% fewer
// cross-shard edges than the contiguous default (BENCH_partition.json).
func BFSChunksPartitioner() Partitioner { return partition.BFSChunks{} }

// GreedyBalancedPartitioner refines the BFS chunks by moving boundary
// nodes toward the shard holding most of their edges, under a balance
// constraint — the highest-quality, highest-cost option.
func GreedyBalancedPartitioner() Partitioner { return partition.GreedyBalanced{} }

// PartitionerByName resolves "contiguous", "bfs", or "greedy" — the
// names accepted by lcpserve's -partitioner flag and the HTTP
// "partitioner" request option.
func PartitionerByName(name string) (Partitioner, error) { return partition.ByName(name) }

// CheckDistributedWith is CheckDistributed with an explicit scheduler
// configuration. DistOptions{Sharded: true} selects the sharded layout,
// which closes most of the gap to the sequential runner once the node
// count dwarfs GOMAXPROCS while staying verdict-identical (see the
// performance guide in README.md).
//
// Deprecated: use NewChecker with WithBackend(BackendDist) plus
// WithSharded/WithShards/WithFreeRunning/WithPartitioner — and keep the
// Checker around: it reuses its wiring across proofs, which this
// one-shot wrapper cannot.
func CheckDistributedWith(in *Instance, p Proof, v Verifier, opt DistOptions) (*Result, error) {
	c, err := NewChecker(in, WithVerifier(v), WithBackend(BackendDist), withDistOptions(opt))
	if err != nil {
		return nil, err
	}
	defer c.(*checker).close()
	//lint:ignore ctxflow deprecated ctx-less wrapper kept for compatibility; new callers use Checker.Check with their own ctx
	rep, err := c.Check(context.Background(), p)
	if err != nil {
		return nil, err
	}
	return rep.Result(), nil
}

// ProveAndCheck proves and then verifies everywhere, failing loudly on
// completeness violations.
func ProveAndCheck(in *Instance, s Scheme) (Proof, *Result, error) {
	return core.ProveAndCheck(in, s)
}

// The long-lived verification engine: build once per instance, verify
// many proofs. Check and CheckDistributed rebuild every radius-r view
// per call; the Engine caches them (per radius, shared across proofs)
// and serves CheckProof / CheckBatch / CheckStream / CheckDistributed
// at a fraction of the per-proof cost. Prefer it whenever the same
// instance meets more than a handful of proofs — tampering sweeps,
// adversary searches, or a verification service's request stream.
type (
	// Engine is the amortized verification service for one instance.
	Engine = engine.Engine
	// EngineOptions tunes workers, message-passing shards, the halo
	// partitioner, and the sharded runtimes' scheduler.
	EngineOptions = engine.Options
	// Verdict is one node's decision as streamed by Engine.CheckStream.
	Verdict = engine.Verdict
	// ColumnsOptions tunes one Engine.CheckBatchColumnsWith call: the
	// column-wise batch path that walks each cached skeleton once while
	// evaluating all k proofs of a batch against it.
	ColumnsOptions = engine.ColumnsOptions
)

// NewEngine builds a default-configured engine for the instance. Pair
// it with NewChecker's WithEngine option when several checkers (one per
// scheme, say) should share one set of cached views and runtimes.
func NewEngine(in *Instance) *Engine { return engine.New(in, engine.Options{}) }

// NewEngineWith builds an engine with an explicit configuration.
//
// Deprecated: use NewChecker with WithBackend(BackendEngine) or
// WithBackend(BackendEngineDist) plus WithWorkers/WithRuntimes/
// WithPartitioner — the same knobs, compiled through the shared Config
// — and WithEngine(NewEngine(in)) where an explicit engine must be
// shared.
func NewEngineWith(in *Instance, opt EngineOptions) *Engine { return engine.New(in, opt) }

// Built-in schemes (Table 1 of the paper). Each constructor returns a
// ready-to-use Scheme.

// EulerianScheme: LCP(0), "G is Eulerian" on connected graphs.
func EulerianScheme() Scheme { return schemes.Eulerian{} }

// LineGraphScheme: LCP(0), "G is a line graph" (Beineke, radius 5).
func LineGraphScheme() Scheme { return schemes.LineGraph{} }

// BipartiteScheme: LCP(1), 2-colouring certificate.
func BipartiteScheme() Scheme { return schemes.Bipartite{} }

// EvenCycleScheme: Θ(1) on cycles, "n(G) is even".
func EvenCycleScheme() Scheme { return schemes.EvenCycle{} }

// ColorableScheme: O(log k), "χ(G) ≤ k" with k = in.Global["k"].
func ColorableScheme() Scheme { return schemes.Colorable{} }

// ReachabilityScheme: Θ(1), undirected s–t reachability.
func ReachabilityScheme() Scheme { return schemes.Reachability{} }

// UnreachabilityScheme: Θ(1), s–t unreachability (undirected and
// directed).
func UnreachabilityScheme() Scheme { return schemes.Unreachability{} }

// STConnectivityScheme: O(log k), s–t vertex connectivity = k.
func STConnectivityScheme() Scheme { return schemes.STConnectivity{} }

// STConnectivityPlanarScheme: the §4.2 planar variant with compressed
// path indices (Θ(1) on planar inputs).
func STConnectivityPlanarScheme() Scheme { return schemes.STConnectivity{CompressIndices: true} }

// SpanningTreeScheme: Θ(log n), "marked edges form a spanning tree".
func SpanningTreeScheme() Scheme { return schemes.SpanningTree{} }

// LeaderElectionScheme: Θ(log n), "exactly one leader".
func LeaderElectionScheme() Scheme { return schemes.LeaderElection{} }

// ForestScheme: O(log n), "G is acyclic".
func ForestScheme() Scheme { return schemes.Forest{} }

// OddNScheme: Θ(log n), "n(G) is odd" via spanning-tree counters.
func OddNScheme() Scheme { return schemes.ParityCount{WantOdd: true} }

// EvenNScheme: Θ(log n), "n(G) is even".
func EvenNScheme() Scheme { return schemes.ParityCount{WantOdd: false} }

// NonBipartiteScheme: Θ(log n), "χ(G) > 2" via an odd closed walk.
func NonBipartiteScheme() Scheme { return schemes.NonBipartite{} }

// HamiltonianCycleScheme: Θ(log n), "marked edges form a Hamiltonian
// cycle".
func HamiltonianCycleScheme() Scheme { return schemes.HamiltonianCycleCheck{} }

// HamiltonianPropertyScheme: Θ(log n), weak scheme for "G is
// Hamiltonian".
func HamiltonianPropertyScheme() Scheme { return schemes.HamiltonianProperty{} }

// MaximalMatchingScheme: LCP(0), "marked edges form a maximal matching".
func MaximalMatchingScheme() Scheme { return schemes.MaximalMatching{} }

// MaximumMatchingBipartiteScheme: Θ(1), König vertex-cover certificate.
func MaximumMatchingBipartiteScheme() Scheme { return schemes.MaximumMatchingBipartite{} }

// MaxWeightMatchingScheme: O(log W), LP-duality certificate.
func MaxWeightMatchingScheme() Scheme { return schemes.MaxWeightMatching{} }

// MaxMatchingCycleScheme: Θ(log n), maximum matching on cycles.
func MaxMatchingCycleScheme() Scheme { return schemes.MaxMatchingCycle{} }

// SymmetricScheme: Θ(n²), "G has a non-trivial automorphism".
func SymmetricScheme() Scheme { return schemes.Symmetric{} }

// FixpointFreeScheme: Θ(n) on trees, "G has a fixpoint-free
// automorphism".
func FixpointFreeScheme() Scheme { return schemes.FixpointFree{} }

// NonThreeColorableScheme: O(n²) (Ω(n²/log n) necessary), "χ(G) > 3".
func NonThreeColorableScheme() Scheme { return schemes.NonThreeColorable() }

// UniversalScheme: O(n²) for any computable property of connected graphs
// (the LCP(∞) = NLD#n row).
func UniversalScheme(name string, holds func(*Graph) bool) Scheme {
	return schemes.Universal{PropertyName: name, Holds: holds}
}

// ComplementScheme: O(log n) for the complement of any LCP(0) property on
// connected graphs (§7.3).
func ComplementScheme(innerName string, inner Verifier) Scheme {
	return schemes.Complement{Inner: inner, InnerName: innerName}
}

// DirectedReachabilityScheme: O(log Δ), directed s–t reachability via
// edge pointers (§4.1 remark; the O(1) case is open).
func DirectedReachabilityScheme() Scheme { return schemes.DirectedReachability{} }

// HamiltonianPathScheme: Θ(log n), "marked edges form a Hamiltonian
// path" (§5.1).
func HamiltonianPathScheme() Scheme { return schemes.HamiltonianPathCheck{} }

// CountPredicateScheme: Θ(log n) for ANY computable predicate of n(G)
// (§7.4 — this is how LogLCP escapes NP). See also PrimeNScheme.
func CountPredicateScheme(name string, pred func(n uint64) bool) Scheme {
	return schemes.CountPredicate{PropertyName: name, Pred: pred}
}

// PrimeNScheme: "n(G) is prime" in LogLCP.
func PrimeNScheme() Scheme { return schemes.PrimeN() }

// GlobalK and GlobalW are the Global keys for k (connectivity /
// colourability bound) and W (maximum edge weight).
const (
	GlobalK = schemes.GlobalK
	GlobalW = schemes.GlobalW
)

// BuiltinSchemes returns every built-in scheme keyed by its Name(), for
// tools that resolve schemes from self-describing instance files
// (cmd/lcpverify).
func BuiltinSchemes() map[string]Scheme {
	list := []Scheme{
		EulerianScheme(),
		LineGraphScheme(),
		BipartiteScheme(),
		EvenCycleScheme(),
		ColorableScheme(),
		ReachabilityScheme(),
		UnreachabilityScheme(),
		DirectedReachabilityScheme(),
		STConnectivityScheme(),
		STConnectivityPlanarScheme(),
		SpanningTreeScheme(),
		LeaderElectionScheme(),
		ForestScheme(),
		OddNScheme(),
		EvenNScheme(),
		PrimeNScheme(),
		NonBipartiteScheme(),
		HamiltonianCycleScheme(),
		HamiltonianPathScheme(),
		HamiltonianPropertyScheme(),
		MaximalMatchingScheme(),
		MaximumMatchingBipartiteScheme(),
		MaxWeightMatchingScheme(),
		MaxMatchingCycleScheme(),
		SymmetricScheme(),
		FixpointFreeScheme(),
		NonThreeColorableScheme(),
		schemes.MISLCL(),
		schemes.ColoringLCL(),
	}
	out := make(map[string]Scheme, len(list))
	for _, s := range list {
		out[s.Name()] = s
	}
	return out
}
