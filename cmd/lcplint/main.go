// Command lcplint runs this repository's static-analysis suite
// (internal/lint) over package directories: lockheld, poolput, ctxflow,
// errignored, and doccomment — each a local verifier for one of the global
// invariants the codebase's hardest bugs violated (see docs/ARCHITECTURE.md,
// "Static-analysis layer"). It complements `go vet`; make check runs both.
//
// Usage:
//
//	lcplint [-analyzers name,name] DIR...
//
// Typically invoked as
//
//	lcplint $(go list -f '{{.Dir}}' ./...)
//
// Each DIR is parsed and fully type-checked (test files excluded, stdlib
// resolved from GOROOT source, so it works offline). Diagnostics print as
// "file:line: [analyzer] message" and any diagnostic makes the exit status
// non-zero. Suppress a finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory, and when
// the full analyzer set runs, a malformed, unknown, or no-longer-needed
// ignore is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lcp/internal/lint"
)

func main() {
	analyzersFlag := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lcplint [-analyzers name,name] DIR...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	analyzers := lint.All()
	opts := lint.RunOptions{CheckDirectives: true}
	if *analyzersFlag != "" {
		var err error
		analyzers, err = lint.ByName(*analyzersFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcplint: %v\n", err)
			os.Exit(2)
		}
		// A partial run cannot tell whether a directive for an unselected
		// analyzer is stale, so the directive audit only runs with the
		// full set.
		opts.CheckDirectives = false
	}

	loader, err := lint.NewLoader(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcplint: %v\n", err)
		os.Exit(2)
	}
	bad := 0
	for _, dir := range flag.Args() {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcplint: %s: %v\n", dir, err)
			bad++
			continue
		}
		diags, err := lint.Run(pkg, analyzers, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcplint: %v\n", err)
			bad++
			continue
		}
		for _, d := range diags {
			fmt.Printf("%s:%d: [%s] %s\n", relPath(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// relPath shortens filenames to the current directory when possible, so
// diagnostics read like compiler output.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, name); err == nil && len(rel) < len(name) {
		return rel
	}
	return name
}
