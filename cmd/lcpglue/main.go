// Command lcpglue reproduces Figure 1 and the lower-bound constructions
// of §5–§6 of Göös & Suomela (PODC 2011) as executable adversaries.
//
// Usage:
//
//	lcpglue -experiment figure1      # §5.3 gluing vs the weak odd-n scheme
//	lcpglue -experiment weak         # all §5.4 instantiations
//	lcpglue -experiment strong       # the same adversary vs real Θ(log n) schemes
//	lcpglue -experiment symmetric    # §6.1 graph gluing
//	lcpglue -experiment trees        # §6.2 rooted-tree gluing
//	lcpglue -experiment 3col         # §6.3 gadget fooling
//	lcpglue -experiment union        # connectivity has no LCP at all
//	lcpglue -experiment counting     # |F_k| growth (§6.1/§6.2 fuel)
//	lcpglue -experiment all
package main

import (
	"flag"
	"fmt"
	"os"

	"lcp"
	"lcp/internal/graphalg"
	"lcp/internal/lowerbound"
	"lcp/internal/schemes"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	n := flag.Int("n", 15, "short-cycle length for the §5.3 gluing")
	flag.Parse()

	runners := map[string]func(int) error{
		"figure1":   runFigure1,
		"weak":      runWeak,
		"strong":    runStrong,
		"symmetric": runSymmetric,
		"trees":     runTrees,
		"3col":      run3Col,
		"union":     runUnion,
		"counting":  runCounting,
	}
	order := []string{"figure1", "weak", "strong", "symmetric", "trees", "3col", "union", "counting"}

	if *experiment == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](*n); err != nil {
				fmt.Fprintln(os.Stderr, "lcpglue:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "lcpglue: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if err := run(*n); err != nil {
		fmt.Fprintln(os.Stderr, "lcpglue:", err)
		os.Exit(1)
	}
}

func runFigure1(n int) error {
	fmt.Println("Figure 1: glue two odd n-cycles C(a,b) into an even 2n-cycle.")
	fmt.Println()
	drawPaperExample()
	fmt.Println("Scheme under attack: the best O(1)-bit attempt at \"n(G) is odd\".")
	if n%2 == 0 {
		n++
	}
	rep, err := lowerbound.RunGluing(lowerbound.OddNTarget(), n)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

// drawPaperExample renders the paper's own Figure 1 instance (n = 10):
// the node identifiers of C(3,12) and its gluing partners.
func drawPaperExample() {
	fmt.Println("The paper's example (n = 10): node identifiers of C(a,b):")
	for _, pair := range [][2]int{{3, 12}, {3, 17}, {8, 17}, {8, 12}} {
		order := lowerbound.CycleABOrder(pair[0], pair[1], 10)
		fmt.Printf("  C(%d,%d): %v\n", pair[0], pair[1], order)
	}
	fmt.Println("  Monochromatic C4 in K_{n,n}: {3,12},{3,17},{8,17},{8,12} →")
	fmt.Println("  cut the {a,b} edges, join b-ends to the next a, inherit proofs:")
	fmt.Println("  every node of the 20-cycle sees a neighbourhood identical to one")
	fmt.Println("  of the four 10-cycles above.")
	fmt.Println()
}

func runWeak(n int) error {
	fmt.Println("§5.4: the gluing adversary vs every weak O(1)-bit scheme.")
	for _, target := range lowerbound.WeakTargets() {
		r := target.Scheme.Verifier().Radius()
		nn := 4*r + 10
		if target.OddLength {
			nn++
		}
		rep, err := lowerbound.RunGluing(target, nn)
		if err != nil {
			return err
		}
		fmt.Println(rep)
	}
	return nil
}

func runStrong(n int) error {
	fmt.Println("§5.1 upper bounds: the same adversary vs real Θ(log n) schemes.")
	fmt.Println("(The signature space outgrows the n^{1/3} colour budget, so no")
	fmt.Println("monochromatic cycle exists and the gluing cannot start.)")
	for _, target := range []lowerbound.GluingTarget{
		lowerbound.StrongOddNTarget(),
		lowerbound.StrongLeaderTarget(),
	} {
		rep, err := lowerbound.RunGluing(target, 15)
		if err != nil {
			return err
		}
		fmt.Println(rep)
	}
	return nil
}

func runSymmetric(int) error {
	fmt.Println("§6.1: G₁⊙G₂ fooling for \"G is symmetric\" (Θ(n²)).")
	family := lowerbound.EnumerateAsymmetricConnected(6)
	fmt.Printf("family: %d asymmetric connected graphs on 6 nodes\n", len(family))
	rep, err := lowerbound.RunGraphGluing("symmetric", schemes.Symmetric{}, family,
		func(g *lcp.Graph) bool { return graphalg.NontrivialAutomorphism(g) != nil }, 1, 8)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func runTrees(int) error {
	fmt.Println("§6.2: rooted-tree gluing for fixpoint-free symmetry (Θ(n)).")
	family := lowerbound.EnumerateRootedTrees(6)
	fmt.Printf("family: %d rooted trees on 6 nodes (A000081)\n", len(family))
	rep, err := lowerbound.RunTreeGluing(schemes.FixpointFree{}, family, 1, 2,
		func(g *lcp.Graph) bool { return graphalg.FixpointFreeAutomorphism(g) != nil })
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func run3Col(int) error {
	fmt.Println("§6.3: gadget fooling for \"χ(G) > 3\" (Ω(n²/log n)).")
	rep, err := lowerbound.RunThreeColFooling(schemes.NonThreeColorable(), 1, 2, 48)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func runUnion(int) error {
	fmt.Println("Table 1(a) last row: connectivity of general graphs has no LCP.")
	rep, err := lowerbound.RunUnionFooling(lowerbound.ConnectedUniversal(),
		lcp.Cycle(12), lcp.Cycle(13).ShiftIDs(20))
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func runCounting(int) error {
	fmt.Println("Counting fuel for §6: log₂|F_k| growth.")
	fmt.Println("Rooted trees (OEIS A000081), log₂ a(k) / k → log₂ α ≈ 1.56:")
	trees := lowerbound.RootedTreeGrowth(20)
	fmt.Printf("  %4s %16s %10s %8s\n", "k", "a(k)", "log₂", "per k")
	for i, k := range trees.K {
		if k < 4 {
			continue
		}
		fmt.Printf("  %4d %16.0f %10.2f %8.3f\n", k, trees.Count[i], trees.Log2[i], trees.PerK[i])
	}
	fmt.Println("Asymmetric connected graphs (exhaustive, Θ(k²) bits):")
	asym := lowerbound.AsymmetricGrowth(7)
	fmt.Printf("  %4s %10s %10s %8s\n", "k", "count", "log₂", "per k²")
	for i, k := range asym.K {
		fmt.Printf("  %4d %10.0f %10.2f %8.4f\n", k, asym.Count[i], asym.Log2[i], asym.PerK2[i])
	}
	fmt.Println()
	fmt.Println("Bondy–Simonovits, empirically (random colourings of K_{n,n}):")
	fmt.Println(lowerbound.RunBondyProbe(15, 10, 7))
	if _, c4free := lowerbound.AdversarialColoringWithoutC4(15); c4free {
		fmt.Println("  and a matching-based colouring with n colours is C4-free —")
		fmt.Println("  the n^{1/3} pigeonhole budget is what the gluing truly needs.")
	}
	return nil
}
