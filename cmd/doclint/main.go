// Command doclint fails the build when a package is missing its package
// comment. Every package in this repository is part of the paper-to-code
// map documented in docs/ARCHITECTURE.md, and the package comment is
// where each one states which definitions of Göös & Suomela (PODC 2011)
// it implements — so an undocumented package is treated like a vet
// failure, not a style nit. make check runs it alongside go vet.
//
// Usage:
//
//	doclint DIR...
//
// Each DIR is scanned with the Go parser (test files excluded); a
// package whose files all lack a package doc comment is reported, and
// the exit status is non-zero if any package is undocumented.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint DIR...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		undocumented, err := undocumentedPackages(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			bad++
			continue
		}
		for _, name := range undocumented {
			fmt.Fprintf(os.Stderr, "doclint: package %s (%s) has no package comment\n", name, dir)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// undocumentedPackages returns the names of every non-test package in
// dir that carries no package doc comment on any of its files, sorted
// for deterministic output.
func undocumentedPackages(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no Go package in %s", filepath.Base(dir))
	}
	var undocumented []string
	for name, pkg := range pkgs {
		documented := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			undocumented = append(undocumented, name)
		}
	}
	sort.Strings(undocumented)
	return undocumented, nil
}
