// Command doclint fails the build when a package is missing its package
// comment. It survives as a thin wrapper over the doccomment analyzer of
// internal/lint, which absorbed its rule: the package comments are the
// paper-to-code map (see docs/ARCHITECTURE.md), so a missing one is a
// documentation regression, not a style nit.
//
// Deprecated: use cmd/lcplint, which runs doccomment alongside the
// concurrency and API analyzers; make check already does. This command is
// kept so `make doclint` and old muscle memory keep working.
//
// Usage:
//
//	doclint DIR...
package main

import (
	"fmt"
	"os"

	"lcp/internal/lint"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint DIR...")
		os.Exit(2)
	}
	loader, err := lint.NewLoader(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			bad++
			continue
		}
		diags, err := lint.Run(pkg, []*lint.Analyzer{lint.DocComment}, lint.RunOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			bad++
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "doclint: %s (%s)\n", d.Message, dir)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}
