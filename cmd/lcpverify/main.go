// Command lcpverify proves and verifies locally checkable proofs stored
// in the textio instance format, so certificates can be produced by one
// party and independently checked by another.
//
// Verify a self-describing instance file (graph + scheme + proof):
//
//	lcpverify check instance.lcp
//
// Generate a proof for an instance file and print the completed document:
//
//	lcpverify prove instance.lcp > certified.lcp
//
// List the available schemes:
//
//	lcpverify schemes
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"lcp"
	"lcp/internal/textio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "check":
		requireFile()
		if err := check(os.Args[2]); err != nil {
			fmt.Fprintln(os.Stderr, "lcpverify:", err)
			os.Exit(1)
		}
	case "prove":
		requireFile()
		if err := prove(os.Args[2]); err != nil {
			fmt.Fprintln(os.Stderr, "lcpverify:", err)
			os.Exit(1)
		}
	case "schemes":
		listSchemes()
	default:
		usage()
	}
}

func requireFile() {
	if len(os.Args) < 3 {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lcpverify {check|prove} <file> | lcpverify schemes")
	os.Exit(2)
}

func load(path string) (*textio.Document, lcp.Scheme, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	doc, err := textio.Parse(f)
	if err != nil {
		return nil, nil, err
	}
	if doc.SchemeName == "" {
		return nil, nil, fmt.Errorf("%s: no scheme directive; add e.g. \"scheme bipartite\"", path)
	}
	scheme, ok := lcp.BuiltinSchemes()[doc.SchemeName]
	if !ok {
		return nil, nil, fmt.Errorf("unknown scheme %q (see: lcpverify schemes)", doc.SchemeName)
	}
	return doc, scheme, nil
}

func check(path string) error {
	doc, scheme, err := load(path)
	if err != nil {
		return err
	}
	// Two façade checkers over one shared engine: the certificate is
	// checked on both the shared-memory path and the message-passing
	// runtime, with the radius-r views and network wiring built once.
	eng := lcp.NewEngine(doc.Instance)
	chk, err := lcp.NewChecker(doc.Instance, lcp.WithScheme(scheme), lcp.WithEngine(eng))
	if err != nil {
		return err
	}
	dchk, err := lcp.NewChecker(doc.Instance, lcp.WithScheme(scheme),
		lcp.WithBackend(lcp.BackendEngineDist), lcp.WithEngine(eng))
	if err != nil {
		return err
	}
	ctx := context.Background()
	rep, err := chk.Check(ctx, doc.Proof)
	if err != nil {
		return err
	}
	drep, err := dchk.Check(ctx, doc.Proof)
	if err != nil {
		return err
	}
	if rep.Accepted() != drep.Accepted() {
		return fmt.Errorf("runner disagreement: shared-memory %s, message-passing %s",
			rep.Result(), drep.Result())
	}
	fmt.Printf("%s: scheme=%s n=%d proof=%d bits/node: %s\n",
		path, scheme.Name(), doc.Instance.G.N(), doc.Proof.Size(), rep.Result())
	if !rep.Accepted() {
		fmt.Printf("alarms at nodes %v\n", rep.Rejectors())
		os.Exit(1)
	}
	return nil
}

func prove(path string) error {
	doc, scheme, err := load(path)
	if err != nil {
		return err
	}
	proof, res, err := lcp.ProveAndCheck(doc.Instance, scheme)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lcpverify: proved %s: %d bits/node, %s\n",
		scheme.Name(), proof.Size(), res)
	doc.Proof = proof
	return textio.Write(os.Stdout, doc)
}

func listSchemes() {
	reg := lcp.BuiltinSchemes()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Println(name)
	}
}
