// Command lcpbench regenerates Table 1 of Göös & Suomela (PODC 2011):
// for every catalogued row it generates yes-instances across a range of
// sizes, runs the prover and the local verifier, measures the proof size
// in bits per node, and fits the observed growth against the paper's
// bound (0, Θ(1), Θ(log n), Θ(n), Θ(n²)).
//
// Usage:
//
//	lcpbench [-sizes 16,32,64,128] [-seed 1] [-verify-distributed]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"lcp"
)

func main() {
	sizesFlag := flag.String("sizes", "16,32,64,128", "comma-separated instance sizes")
	seed := flag.Int64("seed", 1, "generator seed")
	distributed := flag.Bool("verify-distributed", false, "run verifiers on the goroutine-per-node runtime too")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcpbench:", err)
		os.Exit(2)
	}

	fmt.Println("Reproduction of Table 1, Göös & Suomela, \"Locally Checkable Proofs\" (PODC 2011)")
	fmt.Println("Measured: maximum proof size (bits per node) of the implemented scheme.")
	fmt.Println()
	header := fmt.Sprintf("%-8s %-28s %-10s %-18s", "id", "row", "family", "paper bound")
	for _, n := range sizes {
		header += fmt.Sprintf(" %9s", fmt.Sprintf("n≈%d", n))
	}
	header += "  fitted growth"
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)+4))

	section := ""
	for _, exp := range lcp.Catalog() {
		if sec := exp.ID[:3]; sec != section {
			section = sec
			if section == "T1a" {
				fmt.Println("Table 1(a): graph properties")
			} else {
				fmt.Println("Table 1(b): solutions of graph problems")
			}
		}
		row := fmt.Sprintf("%-8s %-28s %-10s %-18s", exp.ID, exp.Row, exp.Family, exp.Bound)
		var ns, bits []float64
		ok := true
		for _, n := range sizes {
			if n < exp.MinN {
				n = exp.MinN
			}
			in := exp.MakeYes(n, *seed)
			proof, err := exp.Scheme.Prove(in)
			if err != nil {
				row += fmt.Sprintf(" %9s", "ERR")
				ok = false
				continue
			}
			// One engine per generated instance, shared by both façade
			// checkers: the verification passes (and any future
			// per-size re-checks) reuse the cached radius-r views.
			eng := lcp.NewEngine(in)
			chk, cerr := lcp.NewChecker(in, lcp.WithScheme(exp.Scheme), lcp.WithEngine(eng))
			if cerr != nil {
				row += fmt.Sprintf(" %9s", "ERR")
				ok = false
				continue
			}
			rep, cerr := chk.Check(context.Background(), proof)
			if cerr != nil || !rep.Accepted() {
				row += fmt.Sprintf(" %9s", "REJ")
				ok = false
				continue
			}
			if *distributed {
				dchk, derr := lcp.NewChecker(in, lcp.WithScheme(exp.Scheme),
					lcp.WithBackend(lcp.BackendEngineDist), lcp.WithEngine(eng))
				var drep *lcp.Report
				if derr == nil {
					drep, derr = dchk.Check(context.Background(), proof)
				}
				if derr != nil || !drep.Accepted() {
					row += fmt.Sprintf(" %9s", "DREJ")
					ok = false
					continue
				}
			}
			row += fmt.Sprintf(" %9d", proof.Size())
			ns = append(ns, float64(in.G.N()))
			bits = append(bits, float64(proof.Size()))
		}
		fit := "-"
		if ok && len(ns) >= 3 {
			fit = classifyGrowth(ns, bits)
		}
		fmt.Printf("%s  %s\n", row, fit)
	}
	fmt.Println()
	sweepParameterRows(*seed)
	fmt.Println()
	fmt.Println("T1a-19 (connected graph, general family: no proof size suffices) is")
	fmt.Println("demonstrated by `lcpglue -experiment union`.")
}

// sweepParameterRows measures the O(log k) and O(log W) rows in their own
// parameter, which the main table (a sweep over n) cannot show.
func sweepParameterRows(seed int64) {
	fmt.Println("Parameter sweeps (bounds in k and W rather than n):")
	fmt.Println()
	fmt.Println("T1a-09  s-t connectivity = k on K_{k,k} (general family, O(log k)):")
	fmt.Printf("  %8s %12s\n", "k", "bits/node")
	for _, k := range []int{2, 4, 8, 16, 32} {
		g := lcp.CompleteBipartite(k, k)
		in := lcp.NewInstance(g).SetNodeLabel(1, lcp.LabelS).SetNodeLabel(2, lcp.LabelT)
		in.Global = lcp.Global{lcp.GlobalK: int64(k)}
		proof, err := lcp.STConnectivityScheme().Prove(in)
		if err != nil {
			fmt.Printf("  %8d %12s (%v)\n", k, "ERR", err)
			continue
		}
		fmt.Printf("  %8d %12d\n", k, proof.Size())
	}
	fmt.Println()
	fmt.Println("T1b-05  max-weight matching on K_{4,4} (O(log W)):")
	fmt.Printf("  %8s %12s\n", "W", "bits/node")
	for _, w := range []int64{1, 15, 255, 4095, 65535} {
		g := lcp.CompleteBipartite(4, 4)
		in := lcp.NewInstance(g)
		in.Weights = map[lcp.Edge]int64{}
		for _, e := range g.Edges() {
			in.Weights[e] = w // uniform: any perfect matching is optimal
		}
		for i := 1; i <= 4; i++ {
			in.MarkEdge(i, i+4)
		}
		in.Global = lcp.Global{lcp.GlobalW: w}
		proof, err := lcp.MaxWeightMatchingScheme().Prove(in)
		if err != nil {
			fmt.Printf("  %8d %12s (%v)\n", w, "ERR", err)
			continue
		}
		fmt.Printf("  %8d %12d\n", w, proof.Size())
	}
	_ = seed
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 3 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}

// classifyGrowth fits measured bits-per-node against affine models
// a + b·f(n) for f ∈ {log n, n, n²} plus the constant model, and returns
// the best label. The intercept matters: the Θ(log n) certificates carry
// sizeable additive headers that would otherwise mask the slope.
func classifyGrowth(ns, bits []float64) string {
	if maxOf(bits) == 0 {
		return "0"
	}
	if maxOf(bits) == minOf(bits) {
		return "Θ(1)"
	}
	shapes := []struct {
		name string
		f    func(n float64) float64
	}{
		{"Θ(log n)", func(n float64) float64 { return math.Log2(n + 1) }},
		{"Θ(n)", func(n float64) float64 { return n }},
		{"Θ(n²)", func(n float64) float64 { return n * n }},
	}
	best, bestErr := "Θ(1)", affineRSS(ns, bits, func(float64) float64 { return 0 })
	for _, s := range shapes {
		if rss := affineRSS(ns, bits, s.f); rss < bestErr {
			bestErr = rss
			best = s.name
		}
	}
	return best
}

// affineRSS fits bits ≈ a + b·f(n) by least squares and returns the
// residual sum of squares (relative). A zero function fits the constant
// model.
func affineRSS(ns, bits []float64, f func(float64) float64) float64 {
	n := float64(len(ns))
	var sf, sb, sff, sfb float64
	for i := range ns {
		x := f(ns[i])
		sf += x
		sb += bits[i]
		sff += x * x
		sfb += x * bits[i]
	}
	den := n*sff - sf*sf
	var a, b float64
	if den == 0 {
		a, b = sb/n, 0
	} else {
		b = (n*sfb - sf*sb) / den
		a = (sb - b*sf) / n
		if b < 0 {
			// Proof sizes do not shrink with n; a negative slope means
			// the shape is wrong.
			a, b = sb/n, 0
		}
	}
	var rss float64
	for i := range ns {
		d := bits[i] - a - b*f(ns[i])
		rss += d * d / (bits[i]*bits[i] + 1)
	}
	return rss
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
