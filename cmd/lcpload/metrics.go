package main

// Scrape-and-diff support for the server's Prometheus endpoint: lcpload
// snapshots GET /metrics before and after the load window and prints the
// counter deltas, so one run shows the observable cost of the traffic it
// generated — requests by route and code, checker outcomes, engine cache
// hits/misses, dist rounds and deliveries. A malformed exposition is a
// hard error (non-zero exit): the load harness doubles as a smoke test
// for the /metrics contract.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// counterSnapshot maps a series identity (metric name plus label set,
// verbatim from the exposition) to its value, for counter-kind families
// only — gauges move both ways and would make the delta table noise.
type counterSnapshot map[string]float64

// scrapeCounters fetches and parses the Prometheus text exposition,
// returning every counter sample. Histogram series are skipped: the
// per-request latency distribution is already lcpload's own output.
func scrapeCounters(metricsURL string) (counterSnapshot, error) {
	resp, err := http.Get(metricsURL)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET /metrics: status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	snap := make(counterSnapshot)
	kinds := make(map[string]string)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found {
				return nil, fmt.Errorf("malformed TYPE line: %q", line)
			}
			kinds[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("unexpected comment line: %q", line)
		}
		series, raw, found := cutSampleValue(line)
		if !found {
			return nil, fmt.Errorf("malformed sample line: %q", line)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		kind, ok := kinds[name]
		if !ok {
			// Histogram child series (_bucket/_sum/_count) resolve to
			// their family's TYPE; anything else untyped is a bug.
			kind = histogramFamilyKind(name, kinds)
			if kind == "" {
				return nil, fmt.Errorf("sample %q has no preceding # TYPE", line)
			}
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("sample %q: %v", line, err)
		}
		if kind == "counter" {
			snap[series] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("GET /metrics: empty exposition")
	}
	return snap, nil
}

func histogramFamilyKind(name string, kinds map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if fam, ok := strings.CutSuffix(name, suffix); ok && kinds[fam] == "histogram" {
			return "histogram"
		}
	}
	return ""
}

// cutSampleValue splits a sample line at the last space outside braces
// (label values may contain escaped spaces).
func cutSampleValue(line string) (series, value string, ok bool) {
	depth := 0
	for i := len(line) - 1; i >= 0; i-- {
		switch line[i] {
		case '}':
			depth++
		case '{':
			depth--
		case ' ':
			if depth == 0 {
				return line[:i], line[i+1:], true
			}
		}
	}
	return "", "", false
}

// printCounterDeltas renders the counters that moved during the load
// window, sorted by series name. A counter that decreased is a contract
// violation and is reported as an error.
func printCounterDeltas(w io.Writer, before, after counterSnapshot) error {
	var moved []string
	for series, v := range after {
		if v != before[series] {
			moved = append(moved, series)
		}
	}
	sort.Strings(moved)
	fmt.Fprintf(w, "\ncounter deltas over the load window (%d series moved):\n", len(moved))
	var decreased []string
	for _, series := range moved {
		delta := after[series] - before[series]
		fmt.Fprintf(w, "  %-70s %+g\n", series, delta)
		if delta < 0 {
			decreased = append(decreased, series)
		}
	}
	if len(decreased) > 0 {
		return fmt.Errorf("counters decreased during the run: %s", strings.Join(decreased, ", "))
	}
	return nil
}
