// Command lcpload is a small load-test harness for the lcpserve HTTP
// service: it drives POST /check and POST /check/batch at a configurable
// concurrency for a fixed duration each and reports throughput (req/s)
// and latency quantiles (p50/p99) per endpoint — the numbers behind any
// "heavy traffic" claim, measured instead of asserted.
//
// Point it at a running daemon, or at nothing: with no -url it starts
// the server in process on a loopback listener (the same http.Handler
// lcpserve serves) so a single command exercises the full HTTP stack
// hermetically — that mode is what `make load-smoke` runs in CI.
//
//	lcpload -url http://localhost:8080 -duration 5s -concurrency 16
//	lcpload -duration 2s -nodes 256 -batch 32 -backend engine-dist
//
// The workload registers one instance (an even cycle with the bipartite
// scheme, proved by the server's own registry) and then re-verifies its
// certificate — the register-once / check-many pattern the amortized
// engine behind the server is built for.
//
// Around the load window the harness scrapes GET /metrics and prints the
// counter deltas (requests by route, checker outcomes, engine cache
// hits, dist rounds and deliveries), and fails the run if the exposition
// does not parse or any counter moved backwards — so every load run also
// smoke-tests the observability contract.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"lcp"
	"lcp/internal/config"
	"lcp/internal/serve"
	"lcp/internal/textio"
)

func main() {
	url := flag.String("url", "", "base URL of a running lcpserve (empty: start the server in process)")
	duration := flag.Duration("duration", 3*time.Second, "measurement window per endpoint")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	nodes := flag.Int("nodes", 128, "instance size (an even cycle, bipartite scheme)")
	batch := flag.Int("batch", 16, "proofs per /check/batch request")
	backend := flag.String("backend", "", "request-level backend override: "+fmt.Sprint(config.Backends()))
	partitioner := flag.String("partitioner", "", "request-level partitioner override (requires a distributed backend)")
	batchColumns := flag.String("batch-columns", "", "batch strategy override for /check/batch: auto, true, or false (requires the engine backend)")
	flag.Parse()

	if err := run(*url, *duration, *concurrency, *nodes, *batch, *backend, *partitioner, *batchColumns); err != nil {
		fmt.Fprintln(os.Stderr, "lcpload:", err)
		os.Exit(1)
	}
}

func run(url string, duration time.Duration, concurrency, nodes, batch int, backend, partitioner, batchColumns string) error {
	if concurrency < 1 || nodes < 4 || batch < 1 {
		return fmt.Errorf("bad flags: concurrency, batch >= 1 and nodes >= 4 required")
	}
	if url == "" {
		ts := httptest.NewServer(serve.New(lcp.BuiltinSchemes(), config.Config{}))
		defer ts.Close()
		url = ts.URL
		fmt.Printf("in-process lcpserve on %s\n", url)
	}

	// Register the instance: an even cycle, 1-bit-per-node bipartite
	// certificate, proved locally and shipped in the document.
	if nodes%2 == 1 {
		nodes++
	}
	in := lcp.NewInstance(lcp.Cycle(nodes))
	scheme := lcp.BipartiteScheme()
	proof, err := lcp.Prove(scheme, in)
	if err != nil {
		return err
	}
	var doc bytes.Buffer
	if err := textio.Write(&doc, &textio.Document{Instance: in, SchemeName: scheme.Name(), Proof: proof}); err != nil {
		return err
	}
	resp, err := http.Post(url+"/instances", "text/plain", &doc)
	if err != nil {
		return err
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := decode(resp, &reg); err != nil {
		return fmt.Errorf("register instance: %v", err)
	}

	proofWire := make(map[string]string, len(proof))
	for node, bits := range proof {
		proofWire[fmt.Sprint(node)] = bits.String()
	}
	common := map[string]any{"instance": reg.ID}
	if backend != "" {
		common["backend"] = backend
	}
	if partitioner != "" {
		common["partitioner"] = partitioner
	}
	checkBody, err := body(common, "proof", proofWire)
	if err != nil {
		return err
	}
	proofs := make([]map[string]string, batch)
	for i := range proofs {
		proofs[i] = proofWire
	}
	// batch_columns only exists on /check/batch; sending it to /check
	// would be rejected, so it extends a batch-only copy of the common
	// fields.
	batchCommon := common
	if batchColumns != "" {
		batchCommon = make(map[string]any, len(common)+1)
		for k, v := range common {
			batchCommon[k] = v
		}
		batchCommon["batch_columns"] = batchColumns
	}
	batchBody, err := body(batchCommon, "proofs", proofs)
	if err != nil {
		return err
	}

	fmt.Printf("target %s, instance %s (n=%d), %d workers, %s per endpoint, batch=%d\n\n",
		url, reg.ID, nodes, concurrency, duration, batch)
	before, err := scrapeCounters(url + "/metrics")
	if err != nil {
		return fmt.Errorf("pre-load metrics scrape: %v", err)
	}
	fmt.Printf("%-14s %10s %8s %10s %10s %10s\n", "endpoint", "requests", "errors", "req/s", "p50 ms", "p99 ms")
	failures := 0
	for _, ep := range []struct {
		path string
		body []byte
	}{
		{"/check", checkBody},
		{"/check/batch", batchBody},
	} {
		r := fire(url+ep.path, ep.body, concurrency, duration)
		fmt.Printf("%-14s %10d %8d %10.0f %10.3f %10.3f\n",
			ep.path, r.requests, r.errors, r.reqPerSec, r.p50.Seconds()*1e3, r.p99.Seconds()*1e3)
		failures += r.errors
	}
	after, err := scrapeCounters(url + "/metrics")
	if err != nil {
		return fmt.Errorf("post-load metrics scrape: %v", err)
	}
	if err := printCounterDeltas(os.Stdout, before, after); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d requests failed", failures)
	}
	return nil
}

// body marshals the common request fields plus one extra key.
func body(common map[string]any, key string, value any) ([]byte, error) {
	m := make(map[string]any, len(common)+1)
	for k, v := range common {
		m[k] = v
	}
	m[key] = value
	return json.Marshal(m)
}

type loadResult struct {
	requests  int
	errors    int
	reqPerSec float64
	p50, p99  time.Duration
}

// fire hammers one endpoint with the fixed body from concurrency
// workers until the deadline, collecting per-request latencies. The
// client carries a hard per-request timeout so a deadlocked handler
// becomes a counted error (and a non-zero exit) instead of hanging the
// harness — in CI, a hung load-smoke is indistinguishable from a pass
// until the runner's global timeout.
func fire(url string, reqBody []byte, concurrency int, duration time.Duration) loadResult {
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      int
	)
	client := &http.Client{Timeout: duration + 30*time.Second}
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for range concurrency {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []time.Duration
			myErrs := 0
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(reqBody))
				if err != nil {
					myErrs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					myErrs++
					continue
				}
				mine = append(mine, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, mine...)
			errs += myErrs
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res := loadResult{requests: len(latencies), errors: errs}
	if len(latencies) > 0 {
		res.reqPerSec = float64(len(latencies)) / elapsed.Seconds()
		res.p50 = quantile(latencies, 0.50)
		res.p99 = quantile(latencies, 0.99)
	}
	return res
}

// quantile reads the q-th quantile from sorted latencies (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
