// Command lcpfleet is the multi-process transport smoke test: it
// spawns a small fleet of worker subprocesses (re-executing its own
// binary in worker mode), fans catalog checks out to them over the
// dist-tcp backend, and asserts verdict equality with both the
// sequential reference and an in-proc distributed run — then shuts the
// fleet down with SIGTERM and insists on clean exits.
//
//	lcpfleet            # spawn 2 workers, run the smoke, exit 0/1
//	lcpfleet -workers 4
//
// It exists for CI (`make transport-smoke`): everything the 3-terminal
// quickstart in the README does by hand — worker startup, address
// scraping, coordinator registration, TCP flooding, graceful teardown
// — exercised as one subprocess tree with a watchdog, so a wedged
// handshake or a leaked worker fails the build instead of a user's
// first scale-out attempt. The worker mode (-as-worker) is the same
// serve loop as cmd/lcpworker; re-execution is what lets a single
// `go run`-built binary be its own fleet.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/remote"
)

const listenPrefix = "lcpworker listening on "

func main() {
	asWorker := flag.Bool("as-worker", false, "run as a fleet worker (internal: lcpfleet re-executes itself with this flag)")
	workers := flag.Int("workers", 2, "worker subprocesses to spawn")
	timeout := flag.Duration("timeout", 60*time.Second, "watchdog for the whole smoke run")
	flag.Parse()

	if *asWorker {
		runWorker()
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := runSmoke(ctx, *workers); err != nil {
		log.Fatalf("lcpfleet: FAIL: %v", err)
	}
	fmt.Println("lcpfleet: PASS")
}

// runWorker is cmd/lcpworker's serve loop inlined: listen on a free
// loopback port, print the scrape line, serve until SIGTERM.
func runWorker() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("lcpfleet worker: listen: %v", err)
	}
	schemes := lcp.BuiltinSchemes()
	for _, exp := range lcp.Catalog() {
		schemes[exp.Scheme.Name()] = exp.Scheme
	}
	w := remote.NewWorker(ln, schemes)
	fmt.Printf("%s%s\n", listenPrefix, w.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Serve(ctx); err != nil && ctx.Err() == nil {
		log.Fatalf("lcpfleet worker: %v", err)
	}
}

// fleetProc is one spawned worker subprocess and its scraped address.
type fleetProc struct {
	cmd  *exec.Cmd
	addr string
}

func runSmoke(ctx context.Context, n int) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locating own binary: %v", err)
	}

	procs := make([]*fleetProc, 0, n)
	defer func() {
		// Belt and braces: whatever happened above, no worker outlives
		// the harness.
		for _, p := range procs {
			_ = p.cmd.Process.Kill()
			_ = p.cmd.Wait()
		}
	}()
	for i := 0; i < n; i++ {
		p, err := spawnWorker(ctx, exe)
		if err != nil {
			return fmt.Errorf("spawning worker %d: %v", i, err)
		}
		procs = append(procs, p)
		fmt.Fprintf(os.Stderr, "lcpfleet: worker %d up at %s (pid %d)\n", i, p.addr, p.cmd.Process.Pid)
	}
	addrs := make([]string, len(procs))
	for i, p := range procs {
		addrs[i] = p.addr
	}

	if err := checkFleet(ctx, addrs); err != nil {
		return err
	}

	// Graceful teardown: SIGTERM each worker and insist on exit 0 —
	// a wedged conn or leaked goroutine shows up as a non-zero exit
	// (or the watchdog firing) right here.
	for i, p := range procs {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("worker %d: SIGTERM: %v", i, err)
		}
	}
	for i, p := range procs {
		if err := p.cmd.Wait(); err != nil {
			return fmt.Errorf("worker %d: did not exit cleanly on SIGTERM: %v", i, err)
		}
		fmt.Fprintf(os.Stderr, "lcpfleet: worker %d exited cleanly\n", i)
	}
	procs = nil
	return nil
}

func spawnWorker(ctx context.Context, exe string) (*fleetProc, error) {
	cmd := exec.CommandContext(ctx, exe, "-as-worker")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	// Scrape the one listen line; the watchdog ctx kills the subprocess
	// (CommandContext) if it never prints.
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok || !strings.HasPrefix(line, listenPrefix) {
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("bad listen line %q", line)
		}
		return &fleetProc{cmd: cmd, addr: strings.TrimPrefix(line, listenPrefix)}, nil
	case <-ctx.Done():
		_ = cmd.Process.Kill()
		return nil, ctx.Err()
	}
}

// checkFleet runs honest and corrupted proofs for a slice of the
// experiment catalog through the worker fleet and compares every
// verdict with the sequential reference.
func checkFleet(ctx context.Context, addrs []string) error {
	const n = 12
	for _, exp := range lcp.Catalog() {
		size := n
		if exp.MinN > size {
			size = exp.MinN
		}
		in := exp.MakeYes(size, 1)
		scheme := exp.Scheme
		good, err := scheme.Prove(in)
		if err != nil {
			return fmt.Errorf("%s: prove: %v", scheme.Name(), err)
		}
		chk, err := lcp.NewChecker(in,
			lcp.WithBackend(lcp.BackendDistTCP),
			lcp.WithScheme(scheme),
			lcp.WithWorkerAddrs(addrs...),
		)
		if err != nil {
			return fmt.Errorf("%s: checker: %v", scheme.Name(), err)
		}
		for name, p := range map[string]core.Proof{
			"honest":  good,
			"flipped": core.FlipBit(good, 3),
		} {
			want := lcp.Check(in, p, scheme.Verifier()).Accepted()
			rep, err := chk.Check(ctx, p)
			if err != nil {
				lcp.CloseChecker(chk)
				return fmt.Errorf("%s/%s: dist-tcp check: %v", scheme.Name(), name, err)
			}
			if rep.Accepted() != want {
				lcp.CloseChecker(chk)
				return fmt.Errorf("%s/%s: dist-tcp accepted=%v, reference says %v", scheme.Name(), name, rep.Accepted(), want)
			}
			fmt.Fprintf(os.Stderr, "lcpfleet: %s/%s ok (accepted=%v, %v)\n", scheme.Name(), name, rep.Accepted(), rep.Elapsed.Round(time.Millisecond))
		}
		lcp.CloseChecker(chk)
	}
	return nil
}
