// Command lcpserve is the long-lived locally-checkable-proof
// verification daemon: an HTTP/JSON front end over the amortized
// engine. Register an instance once, then fire as many proofs at it as
// you like — the radius-r views are built on the first check and shared
// by every later one.
//
//	lcpserve -addr :8080
//
//	# register an instance (textio format, see internal/textio)
//	curl -s localhost:8080/instances --data-binary @instance.lcp
//	# -> {"id":"i1","nodes":16,"edges":16,"scheme":"bipartite",...}
//
//	# verify a proof against it
//	curl -s localhost:8080/check -d '{"instance":"i1","proof":{"1":"0","2":"1"}}'
//
//	# stream verdicts, stopping at the first alarm
//	curl -sN localhost:8080/check/stream -d '{"instance":"i1","proof":{},"stop_on_reject":true}'
//
//	# distributed check with a locality-aware shard partition
//	curl -s localhost:8080/check -d '{"instance":"i1","proof":{},"distributed":true,"partitioner":"bfs"}'
//
//	# request counters and latency sums, per endpoint
//	curl -s localhost:8080/stats
//
// The -partitioner flag picks the default node→shard assignment policy
// for distributed checks (contiguous, bfs, greedy — see
// internal/partition), and -max-instances bounds the in-memory
// instance store with LRU eviction. See the package comment of
// internal/serve for the full endpoint list and examples/proofservice
// for an end-to-end driver.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lcp"
	"lcp/internal/dist"
	"lcp/internal/engine"
	"lcp/internal/partition"
	"lcp/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "verification worker pool size (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "dist runtimes per instance for distributed checks (0 = 1)")
	freeRunning := flag.Bool("free-running", false, "run dist runtimes without a global round barrier")
	sharded := flag.Bool("sharded", false, "batch dist nodes onto shared scheduler goroutines instead of one goroutine per node (the throughput layout for large instances)")
	distShards := flag.Int("dist-shards", 0, "scheduler goroutines per dist runtime in -sharded mode (0 = GOMAXPROCS)")
	partitionerName := flag.String("partitioner", "contiguous",
		"node->shard partitioner for distributed checks: "+strings.Join(partition.Names(), ", ")+
			" (bfs/greedy follow graph topology and cut fewer cross-shard edges; requests can override per check)")
	maxInstances := flag.Int("max-instances", 0, "bound the in-memory instance store; the least recently used instance is evicted past the bound (0 = unbounded)")
	flag.Parse()

	partitioner, err := partition.ByName(*partitionerName)
	if err != nil {
		log.Fatalf("lcpserve: %v", err)
	}
	handler := serve.NewWith(lcp.BuiltinSchemes(), engine.Options{
		Workers: *workers,
		Shards:  *shards,
		// One policy at both levels: the halo cut across dist runtimes
		// and the shard layout inside each runtime.
		Partitioner: partitioner,
		Dist: dist.Options{
			FreeRunning: *freeRunning,
			Sharded:     *sharded,
			Shards:      *distShards,
			Partitioner: partitioner,
		},
	}, serve.Config{MaxInstances: *maxInstances})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "lcpserve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatalf("lcpserve: %v", err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("lcpserve: shutdown: %v", err)
		}
	}
}
