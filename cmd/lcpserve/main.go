// Command lcpserve is the long-lived locally-checkable-proof
// verification daemon: an HTTP/JSON front end over the unified checker
// façade. Register an instance once, then fire as many proofs at it as
// you like — the radius-r views are built on the first check and shared
// by every later one.
//
//	lcpserve -addr :8080
//
//	# register an instance (textio format, see internal/textio)
//	curl -s localhost:8080/instances --data-binary @instance.lcp
//	# -> {"id":"i1","nodes":16,"edges":16,"scheme":"bipartite",...}
//
//	# verify a proof against it
//	curl -s localhost:8080/check -d '{"instance":"i1","proof":{"1":"0","2":"1"}}'
//
//	# stream verdicts, stopping at the first alarm
//	curl -sN localhost:8080/check/stream -d '{"instance":"i1","proof":{},"stop_on_reject":true}'
//
//	# distributed check with a locality-aware shard partition
//	curl -s localhost:8080/check -d '{"instance":"i1","proof":{},"backend":"engine-dist","partitioner":"bfs"}'
//
//	# request counters, latency sums and fixed-bound latency histograms
//	curl -s localhost:8080/stats
//
//	# the same counters plus engine/dist/checker metrics, Prometheus text
//	curl -s localhost:8080/metrics
//
// Every verification knob is one flag per key of the shared
// internal/config resolver — the same keys HTTP requests accept as
// JSON options — so the command line cannot drift from the wire
// protocol: -backend picks the default execution path (core, dist,
// engine, engine-dist), -workers / -runtimes / -sharded / -shards /
// -free-running / -partitioner tune it. Server-level knobs stay their
// own flags: -addr, -max-instances (LRU instance-store bound) and
// -log-requests (one structured log line per request, carrying the
// request's trace ID so log lines join with X-Trace-Id headers).
// See the package comment of internal/serve for the full endpoint
// list and examples/proofservice for an end-to-end driver.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lcp"
	"lcp/internal/config"
	"lcp/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInstances := flag.Int("max-instances", 0, "bound the in-memory instance store; the least recently used instance is evicted past the bound (0 = unbounded)")
	logRequests := flag.Bool("log-requests", false, "log one structured line per request (trace ID, route, backend, verdict, status, latency) to stderr")
	// The verification flags are generated from the config key table:
	// one flag per resolver key, all funneling through config.Set.
	var base config.Config
	config.Flags(flag.CommandLine, &base)
	flag.Parse()

	handler := serve.NewWith(lcp.BuiltinSchemes(), base, serve.Config{
		MaxInstances: *maxInstances,
		LogRequests:  *logRequests,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "lcpserve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatalf("lcpserve: %v", err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("lcpserve: shutdown: %v", err)
		}
	}
}
