package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Bench-diff mode: re-run the benchmarks each BENCH_*.json baseline was
// recorded with and print fresh/baseline ratios. The baseline files are
// the repo's performance ledger — every perf-relevant PR either beats
// them or explains itself in an "updates" entry — and this mode is how
// that comparison stops being a by-hand ritual: `make bench-diff` runs
// it against every ledger file at once.

// benchEntry is one benchmark line of a BENCH_*.json file. The ns key
// has two historical spellings (ns_per_op in BENCH_dist.json,
// ns_per_proof in BENCH_engine.json); both decode here.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerProof  float64 `json:"ns_per_proof"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func (b benchEntry) ns() float64 {
	if b.NsPerOp != 0 {
		return b.NsPerOp
	}
	return b.NsPerProof
}

// benchFile is the subset of the BENCH_*.json schema bench-diff needs:
// the recorded command, the base measurements, and the updates ledger
// (later entries supersede earlier ones per benchmark name).
type benchFile struct {
	Command    string       `json:"command"`
	Benchmarks []benchEntry `json:"benchmarks"`
	Updates    []struct {
		Command    string       `json:"command"`
		Benchmarks []benchEntry `json:"benchmarks"`
	} `json:"updates"`
}

// freshResult is one parsed line of `go test -bench` output.
type freshResult struct {
	ns        float64
	nsPerUnit float64 // the ns/proof custom metric, when reported
	allocs    float64
	hasMem    bool
}

// benchLine matches one result line of `go test -bench -benchmem`
// output. The ns/proof custom metric (reported by the batch benches and
// recorded as ns_per_proof in BENCH_engine.json) and the -benchmem
// columns are both optional, so ns-only baselines
// (BENCH_partition.json) still diff.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) ns/proof)?(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func runBenchDiff(paths []string) error {
	root, err := repoRoot()
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		all, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
		if err != nil {
			return err
		}
		for _, p := range all {
			if filepath.Base(p) == "BENCH_sweep.json" {
				continue // pipeline cells, not go-test benchmarks
			}
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json baselines found under %s", root)
	}
	sort.Strings(paths)

	type baseline struct {
		entry benchEntry
		file  string
	}
	baselines := map[string]baseline{} // benchmark name -> effective baseline
	commands := map[string]bool{}      // deduplicated commands to run
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var bf benchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		record := func(entries []benchEntry) {
			for _, e := range entries {
				if e.Name != "" && e.ns() != 0 {
					baselines[e.Name] = baseline{entry: e, file: filepath.Base(path)}
				}
			}
		}
		record(bf.Benchmarks)
		if bf.Command != "" {
			commands[bf.Command] = true
		}
		// Every command ever recorded runs (deduplicated), not just the
		// latest: an updates entry that re-baselined one benchmark with
		// a narrower command must not silently drop coverage of the
		// rows it left alone.
		for _, u := range bf.Updates {
			if u.Command != "" {
				commands[u.Command] = true
			}
			record(u.Benchmarks)
		}
	}

	fresh := map[string]freshResult{}
	var cmdList []string
	for c := range commands {
		cmdList = append(cmdList, c)
	}
	sort.Strings(cmdList)
	for _, c := range cmdList {
		fmt.Fprintf(os.Stderr, "running: %s\n", c)
		cmd := exec.Command("sh", "-c", c)
		cmd.Dir = root
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("bench command failed: %s: %v", c, err)
		}
		for _, line := range strings.Split(string(out), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			r := freshResult{ns: ns}
			if m[3] != "" {
				if perUnit, err := strconv.ParseFloat(m[3], 64); err == nil {
					r.nsPerUnit = perUnit
				}
			}
			if m[5] != "" {
				if allocs, err := strconv.ParseFloat(m[5], 64); err == nil {
					r.allocs = allocs
					r.hasMem = true
				}
			}
			fresh[m[1]] = r
		}
	}

	var names []string
	for name := range baselines {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "BENCHMARK\tBASE ns/op\tFRESH ns/op\tRATIO\tBASE allocs\tFRESH allocs\tFILE")
	regressions := 0
	for _, name := range names {
		b := baselines[name]
		f, ok := fresh[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t%.0f\t(no fresh result)\t-\t-\t-\t%s\n", name, b.entry.ns(), b.file)
			continue
		}
		// A ns_per_proof baseline compares against the fresh ns/proof
		// metric, never the whole-batch ns/op.
		freshNs := f.ns
		if b.entry.NsPerOp == 0 && b.entry.NsPerProof != 0 {
			if f.nsPerUnit == 0 {
				fmt.Fprintf(tw, "%s\t%.0f\t(no fresh ns/proof)\t-\t-\t-\t%s\n", name, b.entry.ns(), b.file)
				continue
			}
			freshNs = f.nsPerUnit
		}
		ratio := freshNs / b.entry.ns()
		marker := ""
		if ratio > 1.20 {
			marker = "  <- regression?"
			regressions++
		}
		allocsBase, allocsFresh := "-", "-"
		if b.entry.AllocsPerOp != 0 {
			allocsBase = strconv.FormatFloat(b.entry.AllocsPerOp, 'f', 0, 64)
		}
		if f.hasMem {
			allocsFresh = strconv.FormatFloat(f.allocs, 'f', 0, 64)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2fx%s\t%s\t%s\t%s\n",
			name, b.entry.ns(), freshNs, ratio, marker, allocsBase, allocsFresh, b.file)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if regressions > 0 {
		fmt.Printf("\n%d benchmark(s) above 1.20x baseline. Wall-clock ratios are noisy on shared machines; allocs/op is the stable signal. If real, add an updates entry to the BENCH file explaining the change.\n", regressions)
	}
	return nil
}
