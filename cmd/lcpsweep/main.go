// Command lcpsweep measures the full proof pipeline — generate, write,
// load, prove, check — over a parameter grid of instance sizes, graph
// families, and checker configurations, and emits both a paper-style
// text table and a machine-readable BENCH_sweep.json. It is the scale
// companion to the micro-benchmarks in bench_test.go: where those pin
// single operations on small instances, lcpsweep demonstrates that the
// CSR graph core and the map-free ball construction hold up at
// n = 10^5–10^6.
//
// Each grid cell runs in a fresh subprocess (the binary re-executes
// itself with -cell), so one cell's heap cannot flatter or starve the
// next and a per-cell peak-memory reading is meaningful. The cell
// pipeline is end-to-end on purpose: the graph is generated, serialized
// to the textio wire format, parsed back (that parse is what a consumer
// of shipped certificates pays), proved with the leader-election scheme
// (a Θ(log n) certificate verified at radius 1 on any connected graph),
// and checked through the lcp.Checker façade on the requested backend.
//
//	lcpsweep                                   # default grid, table to stdout
//	lcpsweep -n 100000,1000000 -out BENCH_sweep.json
//	lcpsweep -families power-law -backends engine -n 1000000
//	lcpsweep -bench-diff                       # compare fresh benches to BENCH_*.json
//
// The dist backends spin up message-passing automata per node; above
// -max-dist-n (default 10^5) those cells are skipped rather than left
// to thrash, and the skip is reported in the table so a reader never
// mistakes an absent row for a measured one. The ceiling is a
// single-process limit: past it, the dist-tcp backend spreads the same
// check over lcpworker processes (see "Scaling out" in the README).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"lcp"
	"lcp/internal/config"
	"lcp/internal/partition"
	"lcp/internal/textio"
)

// cellResult is one grid cell's measurement, the unit of both the
// subprocess protocol (one JSON object on stdout) and the cells array
// of BENCH_sweep.json.
type cellResult struct {
	Family      string  `json:"family"`
	N           int     `json:"n"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Backend     string  `json:"backend"`
	Partitioner string  `json:"partitioner"`
	Shards      int     `json:"shards"`
	Seed        int64   `json:"seed"`
	GenMS       float64 `json:"gen_ms"`
	WriteMS     float64 `json:"write_ms"`
	LoadMS      float64 `json:"load_ms"`
	ProveMS     float64 `json:"prove_ms"`
	CheckMS     float64 `json:"check_ms"`
	CheckNsNode float64 `json:"check_ns_per_node"`
	ProofBits   int     `json:"proof_bits_total"`
	MaxProofBit int     `json:"proof_bits_max"`
	HeapSys     uint64  `json:"heap_sys_bytes"`
	TotalAlloc  uint64  `json:"total_alloc_bytes"`
	Accepted    bool    `json:"accepted"`
	Skipped     string  `json:"skipped,omitempty"`
}

// sweepFile is the BENCH_sweep.json schema. Unlike the BENCH_* files
// written by hand from `go test -bench` output, cells here carry
// per-stage wall times rather than ns/op, because a cell is a whole
// pipeline run, not an averaged operation.
type sweepFile struct {
	Description string       `json:"description"`
	Recorded    string       `json:"recorded"`
	Go          string       `json:"go"`
	CPU         string       `json:"cpu"`
	Command     string       `json:"command"`
	Cells       []cellResult `json:"cells"`
	Notes       []string     `json:"notes"`
}

func main() {
	var (
		cell         = flag.Bool("cell", false, "internal: run one grid cell and print its JSON result")
		benchDiff    = flag.Bool("bench-diff", false, "run the baselined benchmarks fresh and print ratios against BENCH_*.json")
		nList        = flag.String("n", "100000", "comma-separated instance sizes")
		families     = flag.String("families", "power-law,regular,road", "comma-separated graph families: power-law, regular, road")
		backends     = flag.String("backends", "core,dist,engine,engine-dist", "comma-separated checker backends: "+fmt.Sprint(config.Backends()))
		partitioners = flag.String("partitioners", "contiguous", "comma-separated partitioners for the dist backends: "+strings.Join(partition.Names(), ", "))
		shardsList   = flag.String("shards", "0", "comma-separated shard counts for the dist backends (0 = GOMAXPROCS, goroutine-per-node layout)")
		maxDistN     = flag.Int("max-dist-n", 100000, "largest n the message-passing backends attempt in-process; bigger cells are skipped (the dist-tcp backend scales past this ceiling by spreading shards over lcpworker processes)")
		seed         = flag.Int64("seed", 1, "base generator seed")
		out          = flag.String("out", "", "write BENCH_sweep.json-style output to this path")
		timeout      = flag.Duration("timeout", 10*time.Minute, "per-cell timeout")
		family       = flag.String("family", "", "internal (-cell): graph family")
		cellN        = flag.Int("cell-n", 0, "internal (-cell): instance size")
		backend      = flag.String("backend", "", "internal (-cell): checker backend")
		partitioner  = flag.String("partitioner", "", "internal (-cell): partitioner name, or - for shared-memory backends")
		shards       = flag.Int("cell-shards", 0, "internal (-cell): shard count")
		cellSeed     = flag.Int64("cell-seed", 1, "internal (-cell): generator seed")
	)
	flag.Parse()

	var err error
	switch {
	case *cell:
		err = runCell(*family, *cellN, *backend, *partitioner, *shards, *cellSeed)
	case *benchDiff:
		err = runBenchDiff(flag.Args())
	default:
		err = runSweep(*nList, *families, *backends, *partitioners, *shardsList, *maxDistN, *seed, *out, *timeout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcpsweep:", err)
		os.Exit(1)
	}
}

// ---------------------------------------------------------------------
// Cell mode: one pipeline run in an isolated process.

// generate builds the requested family at size n. The road family
// interprets n as a target: the lattice side is round(sqrt n), so the
// actual node count can differ by a fraction of a percent (the result
// reports the real count).
func generate(family string, n int, seed int64) (*lcp.Graph, error) {
	switch family {
	case "power-law":
		return lcp.PowerLaw(n, 4, seed), nil
	case "regular":
		return lcp.RandomRegular(n, 4, seed), nil
	case "road":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 1 {
			side = 1
		}
		return lcp.RoadNetwork(side, side, n/100, seed), nil
	default:
		return nil, fmt.Errorf("unknown family %q (want power-law, regular, road)", family)
	}
}

func runCell(family string, n int, backend, partitioner string, shards int, seed int64) error {
	res := cellResult{
		Family: family, N: n, Backend: backend,
		Partitioner: partitioner, Shards: shards, Seed: seed,
	}
	scheme := lcp.LeaderElectionScheme()

	t0 := time.Now()
	g, err := generate(family, n, seed)
	if err != nil {
		return err
	}
	res.GenMS = msSince(t0)

	// Serialize to the wire format and parse it back: the parsed
	// instance, not the generated one, feeds prove and check, so the
	// load stage is load-bearing, not decorative.
	tmp, err := os.CreateTemp("", "lcpsweep-*.lcp")
	if err != nil {
		return err
	}
	defer func() {
		if rmErr := os.Remove(tmp.Name()); rmErr != nil {
			fmt.Fprintln(os.Stderr, "lcpsweep:", rmErr)
		}
	}()
	t0 = time.Now()
	in0 := lcp.NewInstance(g)
	// Leader-election wants exactly one node carrying the leader label;
	// node 1 exists in every family (identifiers are dense 1..n).
	in0.NodeLabel = map[int]string{1: lcp.LabelLeader}
	doc := &textio.Document{Instance: in0, SchemeName: scheme.Name()}
	if err := textio.Write(tmp, doc); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	res.WriteMS = msSince(t0)

	t0 = time.Now()
	f, err := os.Open(tmp.Name())
	if err != nil {
		return err
	}
	loaded, err := textio.Parse(f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return err
	}
	res.LoadMS = msSince(t0)
	in := loaded.Instance
	res.Nodes = in.G.N()
	res.Edges = in.G.M()

	t0 = time.Now()
	proof, err := lcp.Prove(scheme, in)
	if err != nil {
		return err
	}
	res.ProveMS = msSince(t0)
	for _, bits := range proof {
		res.ProofBits += bits.Len()
		if bits.Len() > res.MaxProofBit {
			res.MaxProofBit = bits.Len()
		}
	}

	opts := []lcp.CheckerOption{lcp.WithScheme(scheme), lcp.WithBackend(backend)}
	if partitioner != "" && partitioner != "-" {
		p, err := partition.ByName(partitioner)
		if err != nil {
			return err
		}
		opts = append(opts, lcp.WithPartitioner(p))
	}
	if shards > 0 {
		opts = append(opts, lcp.WithShards(shards))
	}
	checker, err := lcp.NewChecker(in, opts...)
	if err != nil {
		return err
	}
	t0 = time.Now()
	report, err := checker.Check(context.Background(), proof)
	if err != nil {
		return err
	}
	res.CheckMS = msSince(t0)
	if res.Nodes > 0 {
		res.CheckNsNode = res.CheckMS * 1e6 / float64(res.Nodes)
	}
	res.Accepted = report.Accepted()
	if !res.Accepted {
		return fmt.Errorf("%s n=%d on %s: honest proof rejected", family, n, backend)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.HeapSys = ms.Sys
	res.TotalAlloc = ms.TotalAlloc

	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(res)
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

// ---------------------------------------------------------------------
// Driver mode: expand the grid, run cells in subprocesses, aggregate.

// gridCell is one planned run before execution.
type gridCell struct {
	family, backend, partitioner string
	n, shards                    int
	skip                         string // non-empty: recorded but not run
}

// distBackend reports whether the backend spins up message-passing
// automata, which is what makes partitioner/shards meaningful and the
// per-node cost high enough to cap n.
func distBackend(b string) bool {
	return b == lcp.BackendDist || b == lcp.BackendEngineDist
}

// expandGrid crosses the parameter lists. Shared-memory backends take
// one cell per (family, n) — partitioner and shards do not apply — while
// the dist backends cross both, capped at maxDistN.
func expandGrid(ns []int, families, backends, parts []string, shardCounts []int, maxDistN int) []gridCell {
	var cells []gridCell
	for _, fam := range families {
		for _, n := range ns {
			for _, b := range backends {
				if !distBackend(b) {
					cells = append(cells, gridCell{family: fam, n: n, backend: b, partitioner: "-"})
					continue
				}
				skip := ""
				if n > maxDistN {
					skip = fmt.Sprintf("n > -max-dist-n=%d (single-process cap; dist-tcp + lcpworker fleet scales past it)", maxDistN)
				}
				for _, p := range parts {
					for _, s := range shardCounts {
						cells = append(cells, gridCell{family: fam, n: n, backend: b, partitioner: p, shards: s, skip: skip})
					}
				}
			}
		}
	}
	return cells
}

func runSweep(nList, families, backends, partitioners, shardsList string, maxDistN int, seed int64, out string, timeout time.Duration) error {
	ns, err := splitInts(nList)
	if err != nil {
		return fmt.Errorf("-n: %v", err)
	}
	shardCounts, err := splitInts(shardsList)
	if err != nil {
		return fmt.Errorf("-shards: %v", err)
	}
	cells := expandGrid(ns, splitList(families), splitList(backends), splitList(partitioners), shardCounts, maxDistN)
	if len(cells) == 0 {
		return fmt.Errorf("empty grid")
	}

	self, err := os.Executable()
	if err != nil {
		return err
	}
	results := make([]cellResult, 0, len(cells))
	for i, c := range cells {
		if c.skip != "" {
			results = append(results, cellResult{
				Family: c.family, N: c.n, Backend: c.backend,
				Partitioner: c.partitioner, Shards: c.shards, Seed: seed,
				Skipped: c.skip,
			})
			continue
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s n=%d backend=%s partitioner=%s shards=%d\n",
			i+1, len(cells), c.family, c.n, c.backend, c.partitioner, c.shards)
		res, err := runCellSubprocess(self, c, seed, timeout)
		if err != nil {
			return fmt.Errorf("cell %s n=%d backend=%s: %v", c.family, c.n, c.backend, err)
		}
		results = append(results, res)
	}

	printTable(os.Stdout, results)
	if out != "" {
		if err := writeSweepFile(out, results); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", out, len(results))
	}
	return nil
}

func runCellSubprocess(self string, c gridCell, seed int64, timeout time.Duration) (cellResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, self,
		"-cell",
		"-family", c.family,
		"-cell-n", strconv.Itoa(c.n),
		"-backend", c.backend,
		"-partitioner", c.partitioner,
		"-cell-shards", strconv.Itoa(c.shards),
		"-cell-seed", strconv.FormatInt(seed, 10),
	)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return cellResult{}, err
	}
	var res cellResult
	if err := json.Unmarshal(outBytes, &res); err != nil {
		return cellResult{}, fmt.Errorf("bad cell output %q: %v", outBytes, err)
	}
	return res, nil
}

// printTable renders the paper-style summary: one row per cell, stage
// wall times in milliseconds, the per-node check cost, and peak memory.
func printTable(w *os.File, results []cellResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "FAMILY\tN\tM\tBACKEND\tPART\tSHARDS\tLOAD ms\tPROVE ms\tCHECK ms\tns/NODE\tPROOF b/NODE\tMEM MB")
	for _, r := range results {
		if r.Skipped != "" {
			fmt.Fprintf(tw, "%s\t%d\t-\t%s\t%s\t%d\tskipped: %s\n",
				r.Family, r.N, r.Backend, r.Partitioner, r.Shards, r.Skipped)
			continue
		}
		bitsPerNode := 0.0
		if r.Nodes > 0 {
			bitsPerNode = float64(r.ProofBits) / float64(r.Nodes)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\t%d\n",
			r.Family, r.Nodes, r.Edges, r.Backend, r.Partitioner, r.Shards,
			r.LoadMS, r.ProveMS, r.CheckMS, r.CheckNsNode, bitsPerNode,
			r.HeapSys/(1<<20))
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "lcpsweep:", err)
	}
}

func writeSweepFile(path string, results []cellResult) error {
	sf := sweepFile{
		Description: "End-to-end pipeline sweep (generate -> textio write -> parse -> prove -> check) over instance size x graph family x checker backend x partitioner x shards, one subprocess per cell. Scheme: leader-election (radius-1 verifier, Theta(log n) proof). Stage times are wall-clock milliseconds for the whole stage, not per-op averages.",
		Recorded:    time.Now().Format("2006-01-02"),
		Go:          runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPU:         cpuModel(),
		Command:     strings.Join(os.Args, " "),
		Cells:       results,
		Notes: []string{
			"road interprets n as a target: the lattice side is round(sqrt n), so nodes can differ from n by a fraction of a percent.",
			"heap_sys_bytes is runtime.MemStats.Sys at the end of the cell process: the high-water mark of memory obtained from the OS, a proxy for peak footprint.",
			"skipped cells record why they did not run (dist backends are capped by -max-dist-n); absence of a number is never silent.",
		},
	}
	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// cpuModel reads the CPU model name for the JSON header, so recorded
// numbers carry their hardware context like the hand-written BENCH_*
// files do.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// repoRoot locates the module root (the directory holding go.mod) so
// -bench-diff can run the baselines' recorded commands from anywhere in
// the tree.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
