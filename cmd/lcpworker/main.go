// Command lcpworker is one shard of a multi-process verification
// fleet: a long-lived process that owns a contiguous-or-otherwise
// slice of an instance and floods it over TCP with its peer workers,
// directed by a dist-tcp coordinator (an lcp.Checker with
// WithBackend("dist-tcp"), or lcpserve started with -worker-addrs).
//
//	# three terminals — two workers and a server fanning out to them
//	lcpworker -addr 127.0.0.1:9101
//	lcpworker -addr 127.0.0.1:9102
//	lcpserve -addr :8080 -worker-addrs 127.0.0.1:9101,127.0.0.1:9102
//
// The worker is stateless across checks: a coordinator registers an
// instance (shipping this worker its radius-1 halo), fires any number
// of checks at it, and deregisters; several coordinators can hold
// disjoint instances on one worker at once. Killing a worker aborts
// in-flight checks on the whole fleet within the round timeout, and
// the survivors accept fresh registrations immediately — failure is
// bounded, not sticky.
//
// The scheme registry served is the full built-in set plus the
// experiment catalog's derived schemes, matching what coordinators can
// name. On start the worker prints one line to stdout:
//
//	lcpworker listening on HOST:PORT
//
// with the resolved address (so -addr 127.0.0.1:0 picks a free port a
// supervisor can scrape). SIGINT/SIGTERM shut it down cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address for coordinator and peer-worker connections (port 0 picks a free port, printed on stdout)")
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lcpworker: listen %s: %v", *addr, err)
	}
	w := remote.NewWorker(ln, workerSchemes())
	fmt.Printf("lcpworker listening on %s\n", w.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Serve(ctx); err != nil && ctx.Err() == nil {
		log.Fatalf("lcpworker: %v", err)
	}
}

// workerSchemes is the registry the worker resolves coordinator
// register requests against: every built-in scheme plus the catalog's
// derived extras (some experiment rows use schemes outside the named
// registry), keyed by Name().
func workerSchemes() map[string]core.Scheme {
	schemes := lcp.BuiltinSchemes()
	for _, exp := range lcp.Catalog() {
		schemes[exp.Scheme.Name()] = exp.Scheme
	}
	return schemes
}
