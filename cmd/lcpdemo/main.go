// Command lcpdemo walks through the life of a locally checkable proof:
// build a network, have the prover construct a certificate, verify it
// with the goroutine-per-node distributed runtime, then tamper with the
// proof and with the network and watch nodes raise the alarm.
//
// Usage:
//
//	lcpdemo [-n 24] [-seed 7]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"lcp"
	"lcp/internal/core"
)

func main() {
	n := flag.Int("n", 24, "network size")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()
	if err := run(*n, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "lcpdemo:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64) error {
	fmt.Printf("Building a random connected network with n = %d …\n", n)
	g := lcp.RandomConnected(n, 0.12, seed)
	in := lcp.NewInstance(g).SetNodeLabel(g.Nodes()[0], lcp.LabelLeader)
	scheme := lcp.LeaderElectionScheme()

	fmt.Printf("Scheme: %s (Θ(log n) bits per node)\n\n", scheme.Name())

	fmt.Println("1. The prover constructs a certificate: a spanning tree rooted")
	fmt.Println("   at the leader, each node holding (root id, parent id, depth).")
	proof, err := scheme.Prove(in)
	if err != nil {
		return err
	}
	fmt.Printf("   proof size: %d bits per node (%d bits total)\n\n", proof.Size(), proof.TotalBits())

	fmt.Println("2. Every node verifies its radius-1 view — one goroutine per")
	fmt.Println("   node, views collected by synchronous flooding:")
	// One façade checker on the message-passing backend serves both the
	// honest and the tampered check; the network wiring is built once.
	chk, err := lcp.NewChecker(in, lcp.WithScheme(scheme), lcp.WithBackend(lcp.BackendDist))
	if err != nil {
		return err
	}
	ctx := context.Background()
	res, err := chk.Check(ctx, proof)
	if err != nil {
		return err
	}
	fmt.Printf("   verdict: %s (%s backend, %v)\n\n", res.Result(), res.Backend, res.Elapsed.Round(time.Microsecond))

	fmt.Println("3. An adversary flips one proof bit:")
	tampered := core.FlipBit(proof, seed)
	res2, err := chk.Check(ctx, tampered)
	if err != nil {
		return err
	}
	fmt.Printf("   verdict: %s\n", res2.Result())
	if node, rejected := res2.FirstReject(); rejected {
		fmt.Printf("   alarm raised first by node %d (all alarms: %v)\n\n", node, res2.Rejectors())
	} else {
		fmt.Println("   (the flip produced another valid certificate — rare but legal)")
		fmt.Println()
	}

	fmt.Println("4. An adversary duplicates the leader label (two leaders):")
	in2 := in.Clone().SetNodeLabel(g.Nodes()[n/2], lcp.LabelLeader)
	chk2, err := lcp.NewChecker(in2, lcp.WithScheme(scheme), lcp.WithBackend(lcp.BackendCore))
	if err != nil {
		return err
	}
	res3, err := chk2.Check(ctx, proof)
	if err != nil {
		return err
	}
	fmt.Printf("   verdict with the old proof: %s\n", res3.Result())
	if _, err := scheme.Prove(in2); err != nil {
		fmt.Printf("   prover refuses the two-leader instance: %v\n\n", err)
	}

	fmt.Println("5. Condition (ii) of the paper, exhaustively, on a tiny instance:")
	tiny := lcp.NewInstance(lcp.Cycle(5)) // no leader at all
	sound, fooling := core.CertifySoundness(tiny, scheme.Verifier(), 2)
	if sound {
		fmt.Println("   no ≤2-bit proof convinces C5 that it has exactly one leader —")
		fmt.Println("   every assignment is rejected by at least one node. QED (by search).")
	} else {
		fmt.Printf("   UNSOUND: fooling proof %v\n", fooling)
	}
	return nil
}
