// Command lcpdemo walks through the life of a locally checkable proof:
// build a network, have the prover construct a certificate, verify it
// with the goroutine-per-node distributed runtime, then tamper with the
// proof and with the network and watch nodes raise the alarm.
//
// Usage:
//
//	lcpdemo [-n 24] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"

	"lcp"
	"lcp/internal/core"
)

func main() {
	n := flag.Int("n", 24, "network size")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()
	if err := run(*n, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "lcpdemo:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64) error {
	fmt.Printf("Building a random connected network with n = %d …\n", n)
	g := lcp.RandomConnected(n, 0.12, seed)
	in := lcp.NewInstance(g).SetNodeLabel(g.Nodes()[0], lcp.LabelLeader)
	scheme := lcp.LeaderElectionScheme()

	fmt.Printf("Scheme: %s (Θ(log n) bits per node)\n\n", scheme.Name())

	fmt.Println("1. The prover constructs a certificate: a spanning tree rooted")
	fmt.Println("   at the leader, each node holding (root id, parent id, depth).")
	proof, err := scheme.Prove(in)
	if err != nil {
		return err
	}
	fmt.Printf("   proof size: %d bits per node (%d bits total)\n\n", proof.Size(), proof.TotalBits())

	fmt.Println("2. Every node verifies its radius-1 view — one goroutine per")
	fmt.Println("   node, views collected by synchronous flooding:")
	res, err := lcp.CheckDistributed(in, proof, scheme.Verifier())
	if err != nil {
		return err
	}
	fmt.Printf("   verdict: %s\n\n", res)

	fmt.Println("3. An adversary flips one proof bit:")
	tampered := core.FlipBit(proof, seed)
	res2, err := lcp.CheckDistributed(in, tampered, scheme.Verifier())
	if err != nil {
		return err
	}
	fmt.Printf("   verdict: %s\n", res2)
	if !res2.Accepted() {
		fmt.Printf("   alarm raised by node(s) %v\n\n", res2.Rejectors())
	} else {
		fmt.Println("   (the flip produced another valid certificate — rare but legal)")
		fmt.Println()
	}

	fmt.Println("4. An adversary duplicates the leader label (two leaders):")
	in2 := in.Clone().SetNodeLabel(g.Nodes()[n/2], lcp.LabelLeader)
	res3 := lcp.Check(in2, proof, scheme.Verifier())
	fmt.Printf("   verdict with the old proof: %s\n", res3)
	if _, err := scheme.Prove(in2); err != nil {
		fmt.Printf("   prover refuses the two-leader instance: %v\n\n", err)
	}

	fmt.Println("5. Condition (ii) of the paper, exhaustively, on a tiny instance:")
	tiny := lcp.NewInstance(lcp.Cycle(5)) // no leader at all
	sound, fooling := core.CertifySoundness(tiny, scheme.Verifier(), 2)
	if sound {
		fmt.Println("   no ≤2-bit proof convinces C5 that it has exactly one leader —")
		fmt.Println("   every assignment is rejected by at least one node. QED (by search).")
	} else {
		fmt.Printf("   UNSOUND: fooling proof %v\n", fooling)
	}
	return nil
}
