package lcp_test

// The cross-backend equivalence matrix: every execution path reachable
// through lcp.NewChecker must be verdict-for-verdict identical to the
// sequential reference core.Check, across the whole scheme catalog,
// including adversarial (tampered, truncated, random) proofs — and the
// façade's batch, stream, and cancellation behaviour must be uniform
// over all of them.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/remote"
)

// tcpFleet lazily starts the in-process lcpworker fleet the dist-tcp
// matrix row fans out to: three workers on loopback listeners, serving
// every catalog scheme, shared by all matrix subtests and reaped with
// the test process.
var tcpFleet struct {
	once  sync.Once
	addrs []string
}

func tcpFleetAddrs() []string {
	tcpFleet.once.Do(func() {
		schemes := lcp.BuiltinSchemes()
		for _, exp := range lcp.Catalog() {
			schemes[exp.Scheme.Name()] = exp.Scheme
		}
		for i := 0; i < 3; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(fmt.Sprintf("tcp fleet: %v", err))
			}
			w := remote.NewWorker(ln, schemes)
			tcpFleet.addrs = append(tcpFleet.addrs, w.Addr())
			go func() {
				_ = w.Serve(context.Background())
			}()
		}
	})
	return tcpFleet.addrs
}

// backendMatrix enumerates every backend reachable through NewChecker,
// including scheduler variants of the message-passing paths.
type backendCase struct {
	name string
	opts []lcp.CheckerOption
}

func backendMatrix() []backendCase {
	return []backendCase{
		{"core", []lcp.CheckerOption{lcp.WithBackend(lcp.BackendCore)}},
		{"dist", []lcp.CheckerOption{lcp.WithBackend(lcp.BackendDist)}},
		{"dist-sharded", []lcp.CheckerOption{lcp.WithBackend(lcp.BackendDist), lcp.WithShards(3)}},
		{"dist-sharded-free", []lcp.CheckerOption{
			lcp.WithBackend(lcp.BackendDist), lcp.WithShards(3), lcp.WithFreeRunning(true),
			lcp.WithPartitioner(lcp.BFSChunksPartitioner()),
		}},
		{"engine", []lcp.CheckerOption{lcp.WithBackend(lcp.BackendEngine), lcp.WithWorkers(3)}},
		// Forcing the column-wise batch strategy routes CheckBatch
		// through ProofColumns + ball-restriction dedup whatever the
		// batch size; Check and CheckStream stay on the per-proof paths,
		// so the whole surface is exercised against the same reference.
		{"engine-columns", []lcp.CheckerOption{
			lcp.WithBackend(lcp.BackendEngine), lcp.WithWorkers(3), lcp.WithBatchColumns(true),
		}},
		// ...and forcing it off keeps the per-proof batch loop covered,
		// since the plain "engine" case auto-engages columns at the
		// matrix's four-proof batch size.
		{"engine-batch-loop", []lcp.CheckerOption{
			lcp.WithBackend(lcp.BackendEngine), lcp.WithWorkers(3), lcp.WithBatchColumns(false),
		}},
		{"engine-dist", []lcp.CheckerOption{
			lcp.WithBackend(lcp.BackendEngineDist), lcp.WithRuntimes(3),
			lcp.WithPartitioner(lcp.BFSChunksPartitioner()),
		}},
		// The multi-process path: real lcpworker fleet on loopback TCP,
		// the checker acting as fan-out coordinator. Same matrix, same
		// reference — the verdicts cross process boundaries and come
		// back identical.
		{"dist-tcp", []lcp.CheckerOption{
			lcp.WithBackend(lcp.BackendDistTCP),
			lcp.WithWorkerAddrs(tcpFleetAddrs()...),
			lcp.WithPartitioner(lcp.BFSChunksPartitioner()),
		}},
	}
}

func reportMatches(t *testing.T, ctx string, rep *lcp.Report, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(rep.Outputs, want.Outputs) {
		t.Fatalf("%s: outputs differ:\n got %v\nwant %v", ctx, rep.Outputs, want.Outputs)
	}
	if rep.Accepted() != want.Accepted() {
		t.Fatalf("%s: accepted %v, want %v", ctx, rep.Accepted(), want.Accepted())
	}
	if !reflect.DeepEqual(rep.Rejectors(), want.Rejectors()) {
		t.Fatalf("%s: rejectors differ: %v vs %v", ctx, rep.Rejectors(), want.Rejectors())
	}
	if node, ok := rep.FirstReject(); ok != !want.Accepted() ||
		(ok && node != want.Rejectors()[0]) {
		t.Fatalf("%s: FirstReject (%d, %v) inconsistent with rejectors %v", ctx, node, ok, want.Rejectors())
	}
	if rep.Nodes() != len(want.Outputs) {
		t.Fatalf("%s: %d nodes reported, want %d", ctx, rep.Nodes(), len(want.Outputs))
	}
}

// TestCheckerBackendEquivalenceMatrix is the acceptance matrix: for
// every catalog row and every backend, Check / CheckBatch / CheckStream
// agree with core.Check on honest, tampered and truncated proofs.
func TestCheckerBackendEquivalenceMatrix(t *testing.T) {
	const n = 12
	ctx := context.Background()
	for _, exp := range lcp.Catalog() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			size := n
			if size < exp.MinN {
				size = exp.MinN
			}
			in := exp.MakeYes(size, 1)
			honest, err := exp.Scheme.Prove(in)
			if err != nil {
				t.Fatalf("prove yes-instance: %v", err)
			}
			proofs := []core.Proof{honest, core.FlipBit(honest, 0), core.FlipBit(honest, 1), honest.Truncated(1)}
			labels := []string{"honest", "tampered-0", "tampered-1", "truncated"}
			v := exp.Scheme.Verifier()
			wants := make([]*core.Result, len(proofs))
			for i, p := range proofs {
				wants[i] = core.Check(in, p, v)
			}
			for _, bc := range backendMatrix() {
				chk, err := lcp.NewChecker(in, append([]lcp.CheckerOption{lcp.WithScheme(exp.Scheme)}, bc.opts...)...)
				if err != nil {
					t.Fatalf("%s: NewChecker: %v", bc.name, err)
				}
				for i, p := range proofs {
					rep, err := chk.Check(ctx, p)
					if err != nil {
						t.Fatalf("%s/%s: Check: %v", bc.name, labels[i], err)
					}
					if rep.Backend == "" {
						t.Fatalf("%s: report missing backend label", bc.name)
					}
					reportMatches(t, fmt.Sprintf("%s/%s [check]", bc.name, labels[i]), rep, wants[i])
				}
				reps, err := chk.CheckBatch(ctx, proofs)
				if err != nil {
					t.Fatalf("%s: CheckBatch: %v", bc.name, err)
				}
				if len(reps) != len(proofs) {
					t.Fatalf("%s: CheckBatch returned %d reports for %d proofs", bc.name, len(reps), len(proofs))
				}
				for i, rep := range reps {
					reportMatches(t, fmt.Sprintf("%s/%s [batch]", bc.name, labels[i]), rep, wants[i])
				}
				stream, err := chk.CheckStream(ctx, proofs[1])
				if err != nil {
					t.Fatalf("%s: CheckStream: %v", bc.name, err)
				}
				got := &core.Result{Outputs: make(map[int]bool, size)}
				for verdict := range stream {
					if _, dup := got.Outputs[verdict.Node]; dup {
						t.Fatalf("%s: duplicate stream verdict for node %d", bc.name, verdict.Node)
					}
					got.Outputs[verdict.Node] = verdict.Accept
				}
				if !reflect.DeepEqual(got.Outputs, wants[1].Outputs) {
					t.Fatalf("%s [stream]: outputs differ:\n got %v\nwant %v", bc.name, got.Outputs, wants[1].Outputs)
				}
			}
		})
	}
}

// TestCheckerReportBackendLabel pins the Report.Backend label to the
// selected backend name on every path.
func TestCheckerReportBackendLabel(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(8))
	scheme := lcp.BipartiteScheme()
	p, err := lcp.Prove(scheme, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{lcp.BackendCore, lcp.BackendDist, lcp.BackendEngine, lcp.BackendEngineDist} {
		chk, err := lcp.NewChecker(in, lcp.WithScheme(scheme), lcp.WithBackend(name))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := chk.Check(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Backend != name {
			t.Fatalf("Report.Backend = %q, want %q", rep.Backend, name)
		}
		if rep.Elapsed < 0 {
			t.Fatalf("negative elapsed %v", rep.Elapsed)
		}
	}
}

// TestCheckerDefaultsAndErrors pins the construction contract: engine
// is the default backend, a verifier is mandatory, and bad options fail
// loudly at construction, not at first check.
func TestCheckerDefaultsAndErrors(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(6))
	scheme := lcp.BipartiteScheme()
	chk, err := lcp.NewChecker(in, lcp.WithScheme(scheme))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := chk.Check(context.Background(), core.Proof{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != lcp.BackendEngine {
		t.Fatalf("default backend %q, want %q", rep.Backend, lcp.BackendEngine)
	}

	if _, err := lcp.NewChecker(nil, lcp.WithScheme(scheme)); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := lcp.NewChecker(in); err == nil {
		t.Fatal("missing verifier accepted")
	}
	if _, err := lcp.NewChecker(in, lcp.WithScheme(scheme), lcp.WithBackend("warp-drive")); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := lcp.NewChecker(in, lcp.WithScheme(scheme), lcp.WithBackend(lcp.BackendCore),
		lcp.WithEngine(lcp.NewEngine(in))); err == nil {
		t.Fatal("WithEngine accepted on the core backend")
	}
	other := lcp.NewInstance(lcp.Cycle(4))
	if _, err := lcp.NewChecker(in, lcp.WithScheme(scheme), lcp.WithEngine(lcp.NewEngine(other))); err == nil {
		t.Fatal("WithEngine accepted with a mismatched instance")
	}
}

// TestCheckerSharedEngine: two checkers over one engine answer
// identically (and exercise the serve wiring pattern).
func TestCheckerSharedEngine(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(16))
	scheme := lcp.BipartiteScheme()
	p, err := lcp.Prove(scheme, in)
	if err != nil {
		t.Fatal(err)
	}
	eng := lcp.NewEngine(in)
	shared, err := lcp.NewChecker(in, lcp.WithScheme(scheme), lcp.WithEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	sharedDist, err := lcp.NewChecker(in, lcp.WithScheme(scheme),
		lcp.WithBackend(lcp.BackendEngineDist), lcp.WithEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	want := core.Check(in, p, scheme.Verifier())
	for name, chk := range map[string]lcp.Checker{"engine": shared, "engine-dist": sharedDist} {
		rep, err := chk.Check(context.Background(), p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reportMatches(t, name, rep, want)
	}
}

// TestCheckerCancelledContext: a pre-cancelled context fails every
// backend's Check, CheckBatch and CheckStream without touching a node.
func TestCheckerCancelledContext(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(12))
	scheme := lcp.BipartiteScheme()
	p, err := lcp.Prove(scheme, in)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, bc := range backendMatrix() {
		chk, err := lcp.NewChecker(in, append([]lcp.CheckerOption{lcp.WithScheme(scheme)}, bc.opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := chk.Check(ctx, p); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Check error = %v, want context.Canceled", bc.name, err)
		}
		_, err = chk.CheckBatch(ctx, []core.Proof{p, p})
		var be *lcp.BatchError
		if !errors.As(err, &be) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: CheckBatch error = %v, want *BatchError wrapping context.Canceled", bc.name, err)
		}
		if _, err := chk.CheckStream(ctx, p); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: CheckStream error = %v, want context.Canceled", bc.name, err)
		}
	}
}

// TestCheckerBatchCancelMidway: on the sequential engine backend a
// context cancelled while proof 0 is being verified aborts the batch at
// the next proof boundary with the failing index in the BatchError.
func TestCheckerBatchCancelMidway(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(12))
	ctx, cancel := context.WithCancel(context.Background())
	v := core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		cancel() // fires during proof 0; later proofs must not start
		return true
	}}
	chk, err := lcp.NewChecker(in, lcp.WithVerifier(v),
		lcp.WithBackend(lcp.BackendEngine), lcp.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = chk.CheckBatch(ctx, []core.Proof{{}, {}, {}})
	var be *lcp.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v, want *BatchError", err)
	}
	if be.Index != 1 {
		t.Fatalf("BatchError.Index = %d, want 1 (cancelled between proofs 0 and 1)", be.Index)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchError does not unwrap to context.Canceled: %v", err)
	}
}

// TestCheckerBatchColumnsCancelMidway: the column-wise path fails the
// batch as a unit — no column has a complete verdict until the walk
// finishes — so a cancellation mid-walk reports BatchError.Index 0 (the
// first proof without a report) and still unwraps to context.Canceled.
func TestCheckerBatchColumnsCancelMidway(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(12))
	ctx, cancel := context.WithCancel(context.Background())
	v := core.VerifierFunc{R: 1, F: func(w *core.View) bool {
		cancel() // fires during the first node's columns; the walk must abort at the next node
		return true
	}}
	chk, err := lcp.NewChecker(in, lcp.WithVerifier(v),
		lcp.WithBackend(lcp.BackendEngine), lcp.WithWorkers(1), lcp.WithBatchColumns(true))
	if err != nil {
		t.Fatal(err)
	}
	reps, err := chk.CheckBatch(ctx, []core.Proof{{}, {}, {}})
	if reps != nil {
		t.Fatalf("cancelled columns batch returned %d reports, want none", len(reps))
	}
	var be *lcp.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v, want *BatchError", err)
	}
	if be.Index != 0 {
		t.Fatalf("BatchError.Index = %d, want 0 (the columns walk fails as a unit)", be.Index)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchError does not unwrap to context.Canceled: %v", err)
	}
}

// TestLegacyWrappersDelegate: the deprecated free functions still
// answer exactly like the façade.
func TestLegacyWrappersDelegate(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(10))
	scheme := lcp.BipartiteScheme()
	p, err := lcp.Prove(scheme, in)
	if err != nil {
		t.Fatal(err)
	}
	tampered := core.FlipBit(p, 3)
	for _, proof := range []core.Proof{p, tampered} {
		want := core.Check(in, proof, scheme.Verifier())
		if got := lcp.Check(in, proof, scheme.Verifier()); !reflect.DeepEqual(got.Outputs, want.Outputs) {
			t.Fatalf("lcp.Check diverged: %v vs %v", got.Outputs, want.Outputs)
		}
		dres, err := lcp.CheckDistributed(in, proof, scheme.Verifier())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dres.Outputs, want.Outputs) {
			t.Fatalf("lcp.CheckDistributed diverged: %v vs %v", dres.Outputs, want.Outputs)
		}
		sres, err := lcp.CheckDistributedWith(in, proof, scheme.Verifier(), lcp.DistOptions{Sharded: true, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sres.Outputs, want.Outputs) {
			t.Fatalf("lcp.CheckDistributedWith diverged: %v vs %v", sres.Outputs, want.Outputs)
		}
	}
}

// TestCheckerReportStages: every backend attaches a per-stage timing
// breakdown to its Report, containing the stages of the layers that
// actually ran (and nothing negative or zero-count).
func TestCheckerReportStages(t *testing.T) {
	in := lcp.NewInstance(lcp.Cycle(8))
	scheme := lcp.BipartiteScheme()
	p, err := lcp.Prove(scheme, in)
	if err != nil {
		t.Fatal(err)
	}
	wantStages := map[string][]string{
		lcp.BackendCore:       {"core.check"},
		lcp.BackendDist:       {"dist.wire", "dist.seed", "dist.flood", "dist.run"},
		lcp.BackendEngine:     {"engine.views", "engine.verify"},
		lcp.BackendEngineDist: {"engine.run", "dist.run"},
	}
	for backend, want := range wantStages {
		chk, err := lcp.NewChecker(in, lcp.WithScheme(scheme), lcp.WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := chk.Check(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Stages) == 0 {
			t.Fatalf("%s: Report.Stages empty", backend)
		}
		seen := make(map[string]lcp.Stage, len(rep.Stages))
		for _, st := range rep.Stages {
			if st.Total < 0 || st.Count < 1 {
				t.Fatalf("%s: malformed stage %+v", backend, st)
			}
			seen[st.Name] = st
		}
		for _, name := range want {
			if _, ok := seen[name]; !ok {
				t.Errorf("%s: stage %q missing from %v", backend, name, rep.Stages)
			}
		}
	}
}
