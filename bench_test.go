package lcp_test

// Benchmark harness: one testing.B benchmark per row of Table 1(a)/(b)
// and per lower-bound construction (Figure 1 and §5.4–§6.3). Each
// benchmark measures the full prove+verify pipeline and reports the
// measured proof size as the custom metric "bits/node", which is the
// quantity the paper's Table 1 catalogues. Run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"lcp"
	"lcp/internal/core"
	"lcp/internal/dist"
	"lcp/internal/lowerbound"
	"lcp/internal/ports"
	"lcp/internal/schemes"
)

// benchSize is the default instance size for the table benchmarks; the
// poly(n) rows use benchSizeSmall to keep certificate construction sane.
const (
	benchSize      = 64
	benchSizeSmall = 24
)

func benchExperiment(b *testing.B, exp lcp.Experiment, n int) {
	b.Helper()
	if n < exp.MinN {
		n = exp.MinN
	}
	in := exp.MakeYes(n, 42)
	proof, err := exp.Scheme.Prove(in)
	if err != nil {
		b.Fatalf("%s: %v", exp.ID, err)
	}
	v := exp.Scheme.Verifier()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := exp.Scheme.Prove(in)
		if err != nil {
			b.Fatal(err)
		}
		if !lcp.Check(in, p, v).Accepted() {
			b.Fatalf("%s: rejected", exp.ID)
		}
	}
	b.ReportMetric(float64(proof.Size()), "bits/node")
	b.ReportMetric(float64(in.G.N()), "nodes")
}

func findExperiment(b *testing.B, id string) lcp.Experiment {
	b.Helper()
	for _, exp := range lcp.Catalog() {
		if exp.ID == id {
			return exp
		}
	}
	b.Fatalf("experiment %s not in catalog", id)
	return lcp.Experiment{}
}

// ---- Table 1(a) ----

func BenchmarkT1a01Eulerian(b *testing.B)  { benchExperiment(b, findExperiment(b, "T1a-01"), benchSize) }
func BenchmarkT1a02LineGraph(b *testing.B) { benchExperiment(b, findExperiment(b, "T1a-02"), 32) }
func BenchmarkT1a03Reachability(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-03"), benchSize)
}
func BenchmarkT1a04UnreachUndir(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-04"), benchSize)
}
func BenchmarkT1a05UnreachDir(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-05"), benchSize)
}
func BenchmarkT1a06ConnectivityPlanar(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-06"), benchSize)
}
func BenchmarkT1a07Bipartite(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-07"), benchSize)
}
func BenchmarkT1a08EvenCycle(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-08"), benchSize)
}
func BenchmarkT1a09ConnectivityK(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-09"), benchSize)
}
func BenchmarkT1a10ChromaticLeK(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-10"), benchSize)
}
func BenchmarkT1a11CoLCP0(b *testing.B)  { benchExperiment(b, findExperiment(b, "T1a-11"), benchSize) }
func BenchmarkT1a12Sigma11(b *testing.B) { benchExperiment(b, findExperiment(b, "T1a-12"), benchSize) }
func BenchmarkT1a13OddN(b *testing.B)    { benchExperiment(b, findExperiment(b, "T1a-13"), benchSize) }
func BenchmarkT1a14NonBipartite(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-14"), benchSize)
}
func BenchmarkT1a15FixpointFree(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-15"), benchSizeSmall)
}
func BenchmarkT1a16Symmetric(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-16"), benchSizeSmall)
}
func BenchmarkT1a17Non3Col(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-17"), benchSizeSmall)
}
func BenchmarkT1a18Universal(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1a-18"), benchSizeSmall)
}

// BenchmarkT1a19ConnectivityImpossible is the "—" row: the disjoint-union
// fooling runs end to end (prove two components, splice, watch the
// universal connectivity verifier accept a disconnected graph).
func BenchmarkT1a19ConnectivityImpossible(b *testing.B) {
	g1 := lcp.Cycle(12)
	g2 := lcp.Cycle(13).ShiftIDs(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.RunUnionFooling(lowerbound.ConnectedUniversal(), g1, g2)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Fooled {
			b.Fatal("union fooling failed")
		}
	}
}

// ---- Table 1(b) ----

func BenchmarkT1b01MaximalMatching(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1b-01"), benchSize)
}
func BenchmarkT1b02LCL(b *testing.B) { benchExperiment(b, findExperiment(b, "T1b-02"), benchSize) }
func BenchmarkT1b03LD(b *testing.B)  { benchExperiment(b, findExperiment(b, "T1b-03"), benchSize) }
func BenchmarkT1b04MaxMatchingBip(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1b-04"), benchSize)
}
func BenchmarkT1b05MaxWeightMatching(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1b-05"), benchSize)
}
func BenchmarkT1b06CoLCP0(b *testing.B) { benchExperiment(b, findExperiment(b, "T1b-06"), benchSize) }
func BenchmarkT1b07LeaderElection(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1b-07"), benchSize)
}
func BenchmarkT1b08SpanningTree(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1b-08"), benchSize)
}
func BenchmarkT1b09MaxMatchingCycle(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1b-09"), benchSize)
}
func BenchmarkT1b10Hamiltonian(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1b-10"), benchSize)
}
func BenchmarkT1b11Universal(b *testing.B) {
	benchExperiment(b, findExperiment(b, "T1b-11"), benchSizeSmall)
}

// ---- Figure 1 and the lower-bound constructions ----

// BenchmarkF1Gluing runs the complete §5.3 adversary (169 cycle
// instances, signature colouring, monochromatic C4, glue, verify) against
// the weak odd-n scheme.
func BenchmarkF1Gluing(b *testing.B) {
	target := lowerbound.OddNTarget()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.RunGluing(target, 15)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Fooled {
			b.Fatal("gluing failed")
		}
	}
}

func benchGluing(b *testing.B, target lowerbound.GluingTarget) {
	b.Helper()
	r := target.Scheme.Verifier().Radius()
	n := 4*r + 10
	if target.OddLength {
		n++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.RunGluing(target, n)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Fooled {
			b.Fatal("gluing failed")
		}
	}
}

func BenchmarkLBOddN(b *testing.B)         { benchGluing(b, lowerbound.OddNTarget()) }
func BenchmarkLBNonBipartite(b *testing.B) { benchGluing(b, lowerbound.NonBipartiteTarget()) }
func BenchmarkLBLeader(b *testing.B)       { benchGluing(b, lowerbound.LeaderTarget()) }
func BenchmarkLBSpanningTree(b *testing.B) {
	benchGluing(b, lowerbound.SpanningTreeTarget())
}
func BenchmarkLBMatching(b *testing.B) { benchGluing(b, lowerbound.MaxMatchingTarget()) }

// BenchmarkLBSymmetric runs the §6.1 graph-gluing fooling over the
// asymmetric 6-node family.
func BenchmarkLBSymmetric(b *testing.B) {
	family := lowerbound.EnumerateAsymmetricConnected(6)
	isYes := func(g *lcp.Graph) bool { return g != nil && symHolds(g) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.RunGraphGluing("symmetric", lcp.SymmetricScheme(), family, isYes, 1, 8)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.CollisionFound || !rep.ViewsIdentical || rep.FooledIsYes {
			b.Fatal("symmetric gluing failed")
		}
	}
}

func symHolds(g *lcp.Graph) bool {
	_, err := lcp.SymmetricScheme().Prove(lcp.NewInstance(g))
	return err == nil
}

// BenchmarkLBFixpointFree runs the §6.2 rooted-tree variant.
func BenchmarkLBFixpointFree(b *testing.B) {
	family := lowerbound.EnumerateRootedTrees(6)
	isYes := func(g *lcp.Graph) bool {
		_, err := lcp.FixpointFreeScheme().Prove(lcp.NewInstance(g))
		return err == nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.RunTreeGluing(lcp.FixpointFreeScheme(), family, 1, 2, isYes)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.CollisionFound || !rep.ViewsIdentical || rep.FooledIsYes {
			b.Fatal("tree gluing failed")
		}
	}
}

// BenchmarkLB3Col runs the §6.3 gadget fooling (16 G_{A,Ā} instances,
// wire-window collision, splice, colourability flip).
func BenchmarkLB3Col(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.RunThreeColFooling(schemes.NonThreeColorable(), 1, 2, 48)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.CollisionFound || !rep.ViewsIdentical || !rep.FooledColorable {
			b.Fatal("3col fooling failed")
		}
	}
}

// BenchmarkXM1M2 measures the §7.1 M2 translation overhead: the wrapped
// odd-n scheme on a port-numbered cycle with a leader.
func BenchmarkXM1M2(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(65)).SetNodeLabel(1, lcp.LabelLeader)
	m2 := ports.M2Scheme{Inner: lcp.OddNScheme()}
	proof, err := m2.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	v := m2.Verifier()
	b.ResetTimer()
	defer b.ReportMetric(float64(proof.Size()), "bits/node")
	for i := 0; i < b.N; i++ {
		p, err := m2.Prove(in)
		if err != nil {
			b.Fatal(err)
		}
		if !lcp.Check(in, p, v).Accepted() {
			b.Fatal("rejected")
		}
	}
}

// BenchmarkDistributedRuntime compares the sequential reference runner
// with the goroutine-per-node LOCAL runtime on the same verifier.
func BenchmarkDistributedRuntime(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(127))
	proof, err := lcp.OddNScheme().Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	v := lcp.OddNScheme().Verifier()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !lcp.Check(in, proof, v).Accepted() {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("goroutine-per-node", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := lcp.CheckDistributed(in, proof, v)
			if err != nil || !res.Accepted() {
				b.Fatalf("rejected: %v", err)
			}
		}
	})
}

// BenchmarkEngineAmortized is the headline number for the amortized
// engine: the same 100 proofs (one honest, 99 single-bit tamperings)
// verified on Cycle(255), once with the one-shot sequential runner that
// rebuilds every radius-r view per proof, once on an Engine whose views
// are cached. The gap is the per-proof view-construction cost the
// engine amortizes away; BENCH_engine.json tracks it.
func BenchmarkEngineAmortized(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(255))
	scheme := lcp.OddNScheme()
	honest, err := scheme.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	v := scheme.Verifier()
	proofs := make([]lcp.Proof, 100)
	proofs[0] = honest
	for i := 1; i < len(proofs); i++ {
		proofs[i] = core.FlipBit(honest, int64(i))
	}
	perProof := func(b *testing.B, total time.Duration) {
		b.Helper()
		b.ReportMetric(float64(total.Nanoseconds())/float64(b.N*len(proofs)), "ns/proof")
	}
	b.Run("one-shot-core-check", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, p := range proofs {
				if lcp.Check(in, p, v) == nil {
					b.Fatal("nil result")
				}
			}
		}
		perProof(b, time.Since(start))
	})
	b.Run("engine-cached-views", func(b *testing.B) {
		eng := lcp.NewEngine(in)
		eng.CheckProof(proofs[0], v) // warm the radius cache
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, p := range proofs {
				if eng.CheckProof(p, v) == nil {
					b.Fatal("nil result")
				}
			}
		}
		perProof(b, time.Since(start))
	})
	b.Run("engine-single-worker", func(b *testing.B) {
		// Same cached views without parallelism: isolates amortization
		// from the worker pool.
		eng := lcp.NewEngineWith(in, lcp.EngineOptions{Workers: 1})
		eng.CheckProof(proofs[0], v)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, p := range proofs {
				if eng.CheckProof(p, v) == nil {
					b.Fatal("nil result")
				}
			}
		}
		perProof(b, time.Since(start))
	})
}

// BenchmarkEngineBatchColumns measures the column-wise batch path on
// the exact workload of BenchmarkEngineAmortized (100 proofs — one
// honest, 99 single-bit tamperings — on Cycle(255)), so its ns/proof is
// directly comparable with the engine-cached-views number it has to
// beat by ≥2× (BENCH_engine.json). The win is ball-restriction dedup:
// near-identical columns collapse to roughly one verification per node
// plus cheap compares. stop-on-reject additionally abandons tampered
// columns at their first rejecting node.
func BenchmarkEngineBatchColumns(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(255))
	scheme := lcp.OddNScheme()
	honest, err := scheme.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	v := scheme.Verifier()
	proofs := make([]lcp.Proof, 100)
	proofs[0] = honest
	for i := 1; i < len(proofs); i++ {
		proofs[i] = core.FlipBit(honest, int64(i))
	}
	perProof := func(b *testing.B, total time.Duration) {
		b.Helper()
		b.ReportMetric(float64(total.Nanoseconds())/float64(b.N*len(proofs)), "ns/proof")
	}
	b.Run("columns-full-outputs", func(b *testing.B) {
		eng := lcp.NewEngine(in)
		eng.CheckProof(proofs[0], v) // warm the radius cache
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			res := eng.CheckBatchColumns(proofs, v)
			if len(res) != len(proofs) || !res[0].Accepted() || res[1].Accepted() {
				b.Fatal("unexpected verdicts")
			}
		}
		perProof(b, time.Since(start))
	})
	b.Run("columns-stop-on-reject", func(b *testing.B) {
		eng := lcp.NewEngine(in)
		eng.CheckProof(proofs[0], v)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			res, err := eng.CheckBatchColumnsWith(context.Background(), proofs, v, lcp.ColumnsOptions{StopOnReject: true})
			if err != nil || len(res) != len(proofs) || !res[0].Accepted() || res[1].Accepted() {
				b.Fatalf("unexpected verdicts: %v", err)
			}
		}
		perProof(b, time.Since(start))
	})
}

// sizeSweep prints measured proof sizes across n for a growth-shape
// sanity check inside the benchmark log (cmd/lcpbench does the full
// table).
func BenchmarkProofSizeGrowth(b *testing.B) {
	rows := []string{"T1a-13", "T1a-15", "T1a-16"}
	for _, id := range rows {
		exp := findExperiment(b, id)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, n := range []int{16, 32, 64} {
					in := exp.MakeYes(n, 1)
					p, err := exp.Scheme.Prove(in)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(p.Size()), fmt.Sprintf("bits@n=%d", in.G.N()))
					}
				}
			}
		})
	}
}

// ---- Ablations: design choices called out in DESIGN.md ----

// BenchmarkAblationSymmetricWitness compares the witnessed Θ(n²)
// symmetric-graph certificate (polynomial-time verification: check one
// permutation) against the unwitnessed variant (the verifier searches for
// an automorphism itself). Same proof-size class, very different
// verification cost profile.
func BenchmarkAblationSymmetricWitness(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(24))
	witnessed := lcp.SymmetricScheme()
	unwitnessed := schemes.SymmetricUnwitnessed()
	pw, err := witnessed.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	pu, err := unwitnessed.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("witnessed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !lcp.Check(in, pw, witnessed.Verifier()).Accepted() {
				b.Fatal("rejected")
			}
		}
		b.ReportMetric(float64(pw.Size()), "bits/node")
	})
	b.Run("unwitnessed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !lcp.Check(in, pu, unwitnessed.Verifier()).Accepted() {
				b.Fatal("rejected")
			}
		}
		b.ReportMetric(float64(pu.Size()), "bits/node")
	})
}

// BenchmarkAblationConnectivityCompression measures the §4.2 planar
// index-compression trick: interior grid nodes reach the grid maximum
// κ(s,t) = 4, and the conflict graph of the four disjoint paths is
// sparse, so compressed indices replace the four distinct ones — smaller
// labels at identical soundness.
func BenchmarkAblationConnectivityCompression(b *testing.B) {
	g := lcp.Grid(6, 10)
	s, t := 22, 29 // interior nodes (row 2, columns 1 and 8): κ = 4
	mk := func() *lcp.Instance {
		in := lcp.NewInstance(g).SetNodeLabel(s, lcp.LabelS).SetNodeLabel(t, lcp.LabelT)
		in.Global = lcp.Global{lcp.GlobalK: 4}
		return in
	}
	for _, variant := range []struct {
		name   string
		scheme lcp.Scheme
	}{
		{"plain-indices", lcp.STConnectivityScheme()},
		{"compressed-indices", lcp.STConnectivityPlanarScheme()},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			in := mk()
			p, _, err := lcp.ProveAndCheck(in, variant.scheme)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := variant.scheme.Prove(in); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.Size()), "bits/node")
		})
	}
}

// BenchmarkAblationViewConstruction compares the three verifier
// execution strategies: sequential BFS views, per-node goroutines over
// shared views, and the full message-passing runtime.
func BenchmarkAblationViewConstruction(b *testing.B) {
	in := lcp.NewInstance(lcp.Cycle(255))
	scheme := lcp.OddNScheme()
	proof, err := scheme.Prove(in)
	if err != nil {
		b.Fatal(err)
	}
	v := scheme.Verifier()
	b.Run("sequential-bfs-views", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !lcp.Check(in, proof, v).Accepted() {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("parallel-shared-views", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !dist.CheckParallelViews(in, proof, v).Accepted() {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("message-passing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := dist.Check(in, proof, v)
			if err != nil || !res.Accepted() {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("message-passing-sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := dist.CheckWith(in, proof, v, dist.Options{Sharded: true})
			if err != nil || !res.Accepted() {
				b.Fatal("rejected")
			}
		}
	})
}
