package lcp_test

// Coverage for the BuiltinSchemes registry, which cmd/lcpverify and the
// lcpserve scheme resolution depend on: every scheme must carry a
// unique, non-empty name, and every scheme must round-trip through
// ProveAndCheck on a small yes-instance — so a registry entry can never
// be a name that dies on first use.

import (
	"testing"

	"lcp"
)

// yesInstanceFor returns a small yes-instance for the named builtin
// scheme: from the experiment catalog when the scheme appears there,
// from a handcrafted table otherwise.
func yesInstanceFor(t *testing.T, name string) *lcp.Instance {
	t.Helper()
	for _, exp := range lcp.Catalog() {
		if exp.Scheme.Name() == name {
			n := 12
			if n < exp.MinN {
				n = exp.MinN
			}
			return exp.MakeYes(n, 1)
		}
	}
	switch name {
	case lcp.EvenNScheme().Name():
		return lcp.NewInstance(lcp.Cycle(12))
	case lcp.PrimeNScheme().Name():
		return lcp.NewInstance(lcp.Cycle(7))
	case lcp.ForestScheme().Name():
		return lcp.NewInstance(lcp.RandomTree(10, 3))
	case lcp.HamiltonianPathScheme().Name():
		in := lcp.NewInstance(lcp.Path(8))
		for i := 1; i < 8; i++ {
			in.MarkEdge(i, i+1)
		}
		return in
	case lcp.HamiltonianPropertyScheme().Name():
		return lcp.NewInstance(lcp.Cycle(9))
	case lcp.DirectedReachabilityScheme().Name():
		b := lcp.NewDirectedBuilder()
		for i := 1; i < 8; i++ {
			b.AddEdge(i, i+1)
		}
		in := lcp.NewInstance(b.Graph())
		in.SetNodeLabel(1, lcp.LabelS).SetNodeLabel(8, lcp.LabelT)
		return in
	}
	t.Fatalf("no yes-instance known for builtin scheme %q: add one to yesInstanceFor", name)
	return nil
}

func TestBuiltinSchemesNamesUniqueAndNonEmpty(t *testing.T) {
	reg := lcp.BuiltinSchemes()
	if len(reg) == 0 {
		t.Fatal("empty registry")
	}
	for name, scheme := range reg {
		if name == "" {
			t.Error("registry contains an empty name")
		}
		if scheme == nil {
			t.Errorf("scheme %q is nil", name)
		}
		if got := scheme.Name(); got != name {
			t.Errorf("registry key %q but scheme.Name() = %q", name, got)
		}
	}
	// Uniqueness beyond the map invariant: constructing the registry
	// must not have silently collapsed two schemes onto one key. The
	// registry is built from a fixed constructor list, so count it.
	if want := 29; len(reg) != want {
		t.Errorf("registry has %d schemes, want %d — a Name() collision dropped an entry (or update this count)", len(reg), want)
	}
}

func TestBuiltinSchemesRoundTripOnYesInstances(t *testing.T) {
	for name, scheme := range lcp.BuiltinSchemes() {
		name, scheme := name, scheme
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			in := yesInstanceFor(t, name)
			proof, res, err := lcp.ProveAndCheck(in, scheme)
			if err != nil {
				t.Fatalf("ProveAndCheck: %v", err)
			}
			if !res.Accepted() {
				t.Fatalf("honest proof rejected: %s", res)
			}
			if proof == nil {
				t.Fatal("nil proof on a yes-instance")
			}
			// The verifier must also accept through the amortized
			// engine — the registry serves lcpserve, which only runs
			// engine paths.
			if eres := lcp.NewEngine(in).CheckProof(proof, scheme.Verifier()); !eres.Accepted() {
				t.Fatalf("engine rejected the honest proof: %s", eres)
			}
		})
	}
}
